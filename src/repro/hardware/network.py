"""Fabric model: an RDMA network, flat or two-tier.

Each attached node owns an egress and an ingress port of ``LinkSpec.bandwidth``.
A unicast reserves the sender's egress and the receiver's ingress for the
message's serialization time (cut-through, so large transfers are not
double-serialized), then pays one propagation delay.  Contention therefore
appears exactly where it does physically: many-to-one traffic queues at the
receiver's ingress port (incast), and a single sender cannot exceed its
uplink.

**Two-tier mode.**  Assigning nodes to racks (:meth:`Fabric.assign_rack`)
and configuring the core (:meth:`Fabric.set_core`) turns on rack locality:
intra-rack traffic behaves as before, while inter-rack traffic additionally
serializes through the source rack's core uplink and the destination rack's
core downlink (each of ``core_bandwidth``, i.e. oversubscribed when that is
below the sum of member ports) and pays an extra hop of latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional, Tuple

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.hardware.specs import LinkSpec


class FabricError(Exception):
    """Raised for unknown ports or invalid transfers."""


class _Port:
    """One direction of a link: a rate-limited FIFO gate.

    ``bandwidth=None`` means "use the fabric's edge link rate"; rack core
    ports carry their own (typically oversubscribed) rate.
    """

    def __init__(self, sim: "Simulator", name: str, bandwidth: Optional[float] = None):
        self.gate = Resource(sim, capacity=1, name=name)
        self.bandwidth = bandwidth
        self.bytes_moved = 0


class Fabric:
    """The cluster interconnect.

    Usage::

        fabric = Fabric(sim, DEFAULT_LINK)
        fabric.attach("node0")
        fabric.attach("node1")
        yield from fabric.unicast("node0", "node1", nbytes=4096)
    """

    def __init__(self, sim: "Simulator", spec: LinkSpec):
        self.sim = sim
        self.spec = spec
        self._egress: Dict[str, _Port] = {}
        self._ingress: Dict[str, _Port] = {}
        self._rack_of: Dict[str, str] = {}
        self._core_up: Dict[str, _Port] = {}
        self._core_down: Dict[str, _Port] = {}
        self._core_bandwidth: float = 0.0
        self._core_hop_ns: int = 0
        self.messages = sim.metrics.counter("fabric.messages")
        self.payload_bytes = sim.metrics.counter("fabric.payload_bytes")
        self.inter_rack_messages = sim.metrics.counter("fabric.inter_rack")
        #: Optional fault hook (see :meth:`set_fault_hook`).
        self._fault_hook: Optional[Callable[[str, str, int], Tuple[bool, int]]] = None
        #: Sender-side loss detection delay before a dropped message is
        #: re-injected (RC retransmission model).
        self.retransmit_ns = max(1_000, 4 * spec.propagation_ns)
        self.dropped_messages = sim.metrics.counter("fabric.dropped")

    def attach(self, node_name: str) -> None:
        """Register a node; idempotent."""
        if node_name not in self._egress:
            self._egress[node_name] = _Port(self.sim, f"fabric.{node_name}.egress")
            self._ingress[node_name] = _Port(self.sim, f"fabric.{node_name}.ingress")

    def is_attached(self, node_name: str) -> bool:
        return node_name in self._egress

    def set_fault_hook(
        self, hook: Optional[Callable[[str, str, int], Tuple[bool, int]]]
    ) -> None:
        """Install (or clear, with ``None``) the fault-injection hook.

        ``hook(src, dst, nbytes) -> (dropped, extra_latency_ns)`` is consulted
        once per transmission attempt.  A drop models the message vanishing in
        flight: the sender waits :attr:`retransmit_ns` (loss detection) and
        retransmits, re-consulting the hook — so a permanently-partitioned
        path stalls the verb until the partition heals (callers bound this
        with their own deadlines).  ``extra_latency_ns`` is added to the
        delivery's propagation delay.  With no hook installed the data path
        is byte-for-byte identical to an un-instrumented fabric.
        """
        self._fault_hook = hook

    # ------------------------------------------------------------------
    # Two-tier topology
    # ------------------------------------------------------------------
    def set_core(self, bandwidth: float, hop_ns: int = 200) -> None:
        """Configure the rack-uplink tier (bytes/ns per rack direction)."""
        if bandwidth <= 0:
            raise FabricError("core bandwidth must be positive")
        if hop_ns < 0:
            raise FabricError("core hop latency must be non-negative")
        self._core_bandwidth = bandwidth
        self._core_hop_ns = hop_ns
        for rack in set(self._rack_of.values()):
            self._ensure_rack_ports(rack)

    def assign_rack(self, node_name: str, rack: str) -> None:
        """Place a node in a rack (call after :meth:`attach`)."""
        if node_name not in self._egress:
            raise FabricError(f"attach {node_name!r} before assigning a rack")
        self._rack_of[node_name] = rack
        if self._core_bandwidth:
            self._ensure_rack_ports(rack)

    def _ensure_rack_ports(self, rack: str) -> None:
        if rack not in self._core_up:
            self._core_up[rack] = _Port(
                self.sim, f"fabric.rack.{rack}.up", self._core_bandwidth)
            self._core_down[rack] = _Port(
                self.sim, f"fabric.rack.{rack}.down", self._core_bandwidth)

    def rack_of(self, node_name: str) -> str:
        """The node's rack ('' when unassigned / flat fabric)."""
        return self._rack_of.get(node_name, "")

    def _crosses_core(self, src: str, dst: str) -> bool:
        if not self._core_bandwidth:
            return False
        src_rack = self._rack_of.get(src)
        dst_rack = self._rack_of.get(dst)
        return src_rack is not None and dst_rack is not None and src_rack != dst_rack

    def wire_time(self, nbytes: int) -> int:
        """Serialization time for a payload of ``nbytes`` plus headers."""
        wire_bytes = nbytes + self.spec.header_bytes
        return max(1, round(wire_bytes / self.spec.bandwidth))

    def min_latency(self, nbytes: int) -> int:
        """Uncontended one-way latency (for analytical test baselines)."""
        return self.wire_time(nbytes) + self.spec.propagation_ns

    def unicast(self, src: str, dst: str, nbytes: int) -> Generator[Any, Any, None]:
        """Move ``nbytes`` from ``src`` to ``dst``; returns at delivery time.

        Reserves both the sender's egress and the receiver's ingress for the
        serialization window; the egress is always acquired first so flows
        cannot deadlock (each flow's first lock is private to its sender).
        """
        if src == dst:
            raise FabricError(f"loopback unicast on {src!r}; handle locally instead")
        try:
            egress = self._egress[src]
            ingress = self._ingress[dst]
        except KeyError as exc:
            raise FabricError(f"unknown fabric port: {exc}") from None
        if nbytes < 0:
            raise FabricError("negative transfer size")

        extra_ns = 0
        hook = self._fault_hook
        if hook is not None:
            while True:
                dropped, extra_ns = hook(src, dst, nbytes)
                if not dropped:
                    break
                # The message died in flight; the sender notices only by
                # timeout and retransmits.  The ports stay free meanwhile.
                self.dropped_messages.add()
                yield self.sim.sleep(self.retransmit_ns)

        wire_bytes = nbytes + self.spec.header_bytes
        if self._crosses_core(src, dst):
            # Inter-rack: edge serialization, then the (possibly slower)
            # shared core path, then an extra hop of latency.
            up = self._core_up[self._rack_of[src]]
            down = self._core_down[self._rack_of[dst]]
            core_time = max(1, round(wire_bytes / self._core_bandwidth))
            with (yield egress.gate.request()):
                yield self.sim.sleep(self.wire_time(nbytes))
                egress.bytes_moved += wire_bytes
            with (yield up.gate.request()):
                with (yield down.gate.request()):
                    yield self.sim.sleep(core_time)
                    up.bytes_moved += wire_bytes
                    down.bytes_moved += wire_bytes
            with (yield ingress.gate.request()):
                yield self.sim.sleep(self.wire_time(nbytes))
                ingress.bytes_moved += wire_bytes
            yield self.sim.sleep(self.spec.propagation_ns + self._core_hop_ns + extra_ns)
            self.inter_rack_messages.add()
        else:
            with (yield egress.gate.request()):
                with (yield ingress.gate.request()):
                    yield self.sim.sleep(self.wire_time(nbytes))
                    egress.bytes_moved += wire_bytes
                    ingress.bytes_moved += wire_bytes
            yield self.sim.sleep(self.spec.propagation_ns + extra_ns)
        self.messages.add()
        self.payload_bytes.add(nbytes)

    def egress_bytes(self, node_name: str) -> int:
        """Wire bytes sent by ``node_name`` so far."""
        return self._egress[node_name].bytes_moved

    def ingress_bytes(self, node_name: str) -> int:
        """Wire bytes received by ``node_name`` so far."""
        return self._ingress[node_name].bytes_moved

    def core_bytes(self, rack: str) -> int:
        """Wire bytes that left ``rack`` through its core uplink."""
        port = self._core_up.get(rack)
        return port.bytes_moved if port else 0
