"""RDMA NIC engine: per-verb pipeline costs and message-rate limiting.

The NIC does not understand verbs — that is :mod:`repro.rdma`'s job.  It
models the two costs an RNIC imposes on every work element:

* a per-WQE pipeline occupancy (doorbell ring, WQE fetch, DMA setup), and
* a sustained message-rate ceiling (token bucket), which is what actually
  limits small-message workloads on real hardware.

Both directions (TX for initiated work, RX for incoming packets) have their
own small pipelines, so a node saturated with inbound traffic still initiates
work, just more slowly — matching real RNIC behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.resources import Resource, TokenBucket

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.hardware.specs import NicSpec

#: Concurrent WQEs in flight inside one pipeline direction.
_PIPELINE_WIDTH = 4


class Nic:
    """One node's RDMA NIC."""

    def __init__(self, sim: "Simulator", spec: NicSpec, name: str):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._tx = Resource(sim, capacity=_PIPELINE_WIDTH, name=f"{name}.tx")
        self._rx = Resource(sim, capacity=_PIPELINE_WIDTH, name=f"{name}.rx")
        self._msg_limiter = TokenBucket(
            sim,
            rate_per_ns=spec.message_rate_per_ns,
            burst=spec.message_burst,
            name=f"{name}.msgrate",
        )
        self.tx_messages = sim.metrics.counter(f"{name}.tx_messages")
        self.rx_messages = sim.metrics.counter(f"{name}.rx_messages")

    def is_inline(self, nbytes: int) -> bool:
        """True if a payload rides inside the WQE (no requester-side DMA)."""
        return nbytes <= self.spec.max_inline_bytes

    def tx_process(self) -> Generator[Any, Any, None]:
        """Pay the initiator-side cost of posting one work element."""
        yield from self._msg_limiter.consume(1.0)
        with (yield self._tx.request()):
            yield self.sim.sleep(self.spec.processing_ns)
        self.tx_messages.add()

    def rx_process(self) -> Generator[Any, Any, None]:
        """Pay the responder-side cost of handling one inbound packet."""
        with (yield self._rx.request()):
            yield self.sim.sleep(self.spec.processing_ns)
        self.rx_messages.add()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.name} ({self.spec.name})>"
