"""Crash-atomic multi-object transactions over the Gengar pool.

``repro.txn`` layers lock-ordered two-phase locking, a wait-die contention
policy, and a durable intent record (the single commit point) on top of the
existing glock/gread/gsync primitives.  See :mod:`repro.txn.manager` for
the protocol and ``docs/PROTOCOLS.md`` §10 for the recovery rules.
"""

from repro.txn.manager import Transaction, TxnManager

__all__ = ["Transaction", "TxnManager"]
