"""Distributed transactions: lock-ordered 2PL, wait-die, durable intents.

The protocol, end to end:

1. **begin** — write locks are acquired in ascending global-address order
   (which alone rules out deadlock between transactions whose lock sets
   are declared up front).  Contention is additionally bounded by the
   wait-die policy: a contender whose acquire times out reads the holder's
   advisory *stamp* from the server's stamp table; an older contender
   waits, a younger one dies (:class:`TxnWaitDieError`) and retries under
   the **same** stamp so it ages and eventually wins.
2. **reads** happen under the held locks; **writes** are buffered locally
   (read-your-buffered-writes), so an abort before the commit point is a
   pure local discard — no partial write-set can exist remotely.
3. **commit** — the held fencing epoch is validated (any
   :class:`FencedError` ⇒ clean abort + rollback); then the whole
   write-set (payloads + the client's epoch) is pickled into one *intent
   record* and durably appended on the coordinator server (the home of
   the lowest written address).  That single append IS the commit point.
4. **apply** — the buffered writes are applied to each home server's NVM
   (and any cached copy) via ``txn_apply``, the intent is cleared, and
   the locks are released in reverse order.

Crash atomicity: a client that dies *before* its intent append leaves
nothing but locks (the master's lease sweep force-unlocks and the buffered
writes died with it — rollback); a client that dies *after* leaves a
durable record the sweep rolls *forward* (idempotent byte-level applies)
before force-unlocking, so the committed write-set becomes fully visible
exactly once.  No interleaving makes a partial write-set durable.

With a sharded control plane (``config.num_master_shards > 1``) nothing
here changes shape — locks, stamps, intents, and applies are all *server*
ops, and the few master round trips (metadata lookups, the renew-verdict
probe inside the resilience engine) ride the client's per-shard routing.
What does change is recovery ownership: the coordinator server that holds
a dead client's intent may belong to a different shard than the servers
its write-set targets, so any shard fencing that client scans *all*
reachable intent regions (not just its own servers') and rolls the intent
forward before force-unlocking.  Applies are idempotent absolute writes,
so several shards racing the same roll-forward converge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import GengarClient

from repro.core.addressing import server_of
from repro.core.errors import (
    FencedError,
    LockTimeoutError,
    RetryableError,
    TxnAbortedError,
    TxnError,
    TxnWaitDieError,
)
from repro.rdma.rpc import RpcError
from repro.sim.trace import trace

__all__ = ["Transaction", "TxnManager", "pack_stamp"]

#: Wait-die stamps pack (begin_ns, uid) into one 8-byte word: lower stamp
#: = older transaction.  48 bits of virtual time, 16 bits of uid as the
#: tiebreaker; 0 is reserved for "free / holder unknown".
_STAMP_TIME_BITS = 48


def pack_stamp(begin_ns: int, uid: int) -> int:
    """Total order over transactions: older (smaller) wins ties by uid."""
    return ((begin_ns & ((1 << _STAMP_TIME_BITS) - 1)) << 16) | (uid & 0xFFFF)


class Transaction:
    """One in-flight transaction: the declared lock set, the locks actually
    held, and the locally buffered write-set.

    Obtained from :meth:`TxnManager.begin`; reads/writes must stay inside
    the declared set (static 2PL — the set is what makes global lock
    ordering possible).
    """

    def __init__(self, manager: "TxnManager", txn_id: str, stamp: int,
                 lock_set: Tuple[int, ...]):
        self.manager = manager
        self.id = txn_id
        self.stamp = stamp
        self.lock_set = lock_set
        self.held: List[int] = []
        #: (gaddr, offset) -> payload bytes, applied atomically at commit.
        self.writes: Dict[Tuple[int, int], bytes] = {}
        self.active = True
        #: True once the intent record is durable (the commit point).
        self.committed = False
        self._tok = -1  # spanning "txn" history token

    # ------------------------------------------------------------------
    def _require(self, gaddr: int, what: str) -> None:
        if not self.active:
            raise TxnError(f"{what} on finished transaction {self.id}")
        if gaddr not in self.lock_set:
            raise TxnError(
                f"{what} of {gaddr:#x} outside the declared lock set of "
                f"transaction {self.id} (static 2PL: declare it at begin)")

    def write(self, gaddr: int, data: bytes, offset: int = 0) -> None:
        """Buffer a write; nothing leaves this client until commit."""
        self._require(gaddr, "txn write")
        if not data:
            raise TxnError("empty txn write")
        self.writes[(gaddr, offset)] = bytes(data)

    def read(self, gaddr: int, offset: int = 0,
             length: Optional[int] = None) -> Generator[Any, Any, bytes]:
        """Read under the held lock (serving own buffered writes first)."""
        self._require(gaddr, "txn read")
        buffered = self.writes.get((gaddr, offset))
        if buffered is not None and (length is None or length == len(buffered)):
            # Own uncommitted write: purely local, imposes no inter-txn
            # constraint, so it is deliberately not recorded.
            return bytes(buffered)
        client = self.manager.client
        data = yield from client._gread_traced(gaddr, offset, length)
        hist = client.sim.history
        if hist is not None:
            tok = hist.invoke(client.name, "txn_read", gaddr, txn=self.id,
                              offset=offset)
            hist.ok(tok, value=hist.encode(data))
        return data

    # Convenience delegates (``yield from txn.commit()``).
    def commit(self) -> Generator[Any, Any, None]:
        return self.manager.commit(self)

    def abort(self) -> Generator[Any, Any, None]:
        return self.manager.abort(self)


class TxnManager:
    """Per-client transaction engine (reached via ``client.txn``).

    Pay-as-you-go: nothing here runs — no counters move, no RPCs are
    registered against the wire — until a transaction is actually begun,
    and construction itself is lazy behind the ``client.txn`` property.
    """

    def __init__(self, client: "GengarClient"):
        if not client.config.enable_txn:
            raise TxnError("transactions are disabled (config.enable_txn)")
        self.client = client
        self.sim = client.sim
        self._seq = 0
        #: Lazily fetched per-server stamp-table rkeys (txn_desc RPC).
        self._stamp_rkeys: Dict[int, int] = {}
        #: Test/chaos seam: called as ``hook(point, txn)`` at named points
        #: inside the commit window ("pre-intent", "post-intent",
        #: "mid-apply", "pre-clear", "post-clear").  A hook that raises
        #: models a client dying at exactly that point.
        self.commit_hook = None
        m = self.sim.metrics
        self.m_begins = m.counter("pool.txn_begins")
        self.m_commits = m.counter("pool.txn_commits")
        self.m_aborts = m.counter("pool.txn_aborts")
        self.m_wait_die = m.counter("pool.txn_wait_die")
        self.m_handoffs = m.counter("pool.txn_handoffs")
        self.m_cross_shard = m.counter("pool.txn_cross_shard_commits")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _hook(self, point: str, txn: Transaction) -> None:
        hook = self.commit_hook
        if hook is not None:
            hook(point, txn)

    def _server_call(self, server_id: int, method: str,
                     payload: dict) -> Generator[Any, Any, Any]:
        """Server RPC with transport failures mapped to the retryable
        taxonomy, so :meth:`GengarClient._resilient` can handle them."""
        from repro.core.errors import ServerUnavailableError

        conn = self.client._conns[server_id]
        try:
            result = yield from conn.rpc.call(method, payload)
        except RpcError as exc:
            msg = str(exc)
            if "transport failed" in msg:
                raise ServerUnavailableError(
                    f"{method}: server {server_id} unreachable",
                    server_id=server_id) from exc
            raise TxnError(f"{method}: {msg}") from exc
        return result

    def _stamp_rkey(self, server_id: int) -> Generator[Any, Any, int]:
        rkey = self._stamp_rkeys.get(server_id)
        if rkey is None:
            reply = yield from self.client._resilient(
                "txn_desc",
                lambda: self._server_call(server_id, "txn_desc", {}))
            rkey = reply["stamp_rkey"]
            self._stamp_rkeys[server_id] = rkey
        return rkey

    def _write_stamp(self, meta, stamp: int) -> Generator[Any, Any, None]:
        rkey = yield from self._stamp_rkey(meta.server_id)
        conn = self.client._conns[meta.server_id]
        yield from self.client._rdma_write(
            conn, rkey, meta.lock_idx * 8, stamp.to_bytes(8, "little"))

    def _read_stamp(self, meta) -> Generator[Any, Any, int]:
        rkey = yield from self._stamp_rkey(meta.server_id)
        conn = self.client._conns[meta.server_id]
        raw = yield from self.client._rdma_read(conn, rkey, meta.lock_idx * 8, 8)
        return int.from_bytes(raw, "little")

    def _acquire_timeout_ns(self) -> int:
        # Wait-die needs a bounded spin to consult the holder's stamp; fall
        # back to a generous multiple of the lock retry quantum when the
        # knob is unset.
        return (self.client.config.lock_acquire_timeout_ns
                or 64 * self.client.config.lock_retry_ns)

    # ------------------------------------------------------------------
    # begin / acquire
    # ------------------------------------------------------------------
    def begin(self, gaddrs: Iterable[int],
              stamp: Optional[int] = None) -> Generator[Any, Any, Transaction]:
        """Open a transaction over the given objects, acquiring their write
        locks in ascending global-address order.

        May raise :class:`TxnWaitDieError` (this txn was younger than a
        holder it timed out behind); every already-held lock is released
        first, so a died transaction leaves no state anywhere.
        """
        client = self.client
        lock_set = tuple(sorted(set(gaddrs)))
        if not lock_set:
            raise TxnError("transaction needs a non-empty lock set")
        if stamp is None:
            stamp = pack_stamp(self.sim.now, client.uid)
        self._seq += 1
        txn = Transaction(self, f"{client.name}.t{self._seq}", stamp, lock_set)
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        hist = self.sim.history
        if hist is not None:
            txn._tok = hist.invoke(client.name, "txn", None, txn=txn.id,
                                   keys=list(lock_set))
        self.m_begins.add()
        try:
            for gaddr in lock_set:
                yield from self._acquire_wait_die(txn, gaddr)
        except BaseException as exc:
            yield from self._release_locks(txn)
            txn.active = False
            self.m_aborts.add()
            if hist is not None:
                hist.fail(txn._tok, exc)
            raise
        finally:
            if rec is not None:
                rec.record(client.name, "txn.begin", t0, op=rec.next_op(),
                           txn=txn.id, locks=len(lock_set))
        if self.sim.tracer is not None:
            trace(self.sim, "txn", "began", client=client.name, txn=txn.id,
                  locks=len(lock_set))
        return txn

    def _acquire_wait_die(self, txn: Transaction,
                          gaddr: int) -> Generator[Any, Any, None]:
        client = self.client
        timeout_ns = self._acquire_timeout_ns()
        meta = yield from client._meta(gaddr)
        start = self.sim.now
        while True:
            try:
                yield from client.locks.acquire_write(gaddr,
                                                      timeout_ns=timeout_ns)
            except LockTimeoutError:
                # Elder waits are only live while *something* can free the
                # word — the holder releasing, or the lease sweep clearing
                # a dead holder.  With the master down neither may ever
                # happen, so the wait is bounded by the op deadline (when
                # configured): aborting an elder is always safe, and the
                # caller decides whether to re-run.
                deadline = client.retry_policy.deadline_ns
                if deadline and self.sim.now - start >= deadline:
                    raise TxnAbortedError(
                        f"txn {txn.id} gave up waiting on {gaddr:#x} after "
                        f"{self.sim.now - start} ns (op deadline "
                        f"{deadline} ns; lock recovery stalled)",
                        reason="stalled")
                holder = yield from self._read_stamp(meta)
                if holder and txn.stamp > holder:
                    # Younger than the holder: die, don't deadlock.  The
                    # caller retries under the same stamp so it ages.
                    self.m_wait_die.add()
                    if self.sim.tracer is not None:
                        trace(self.sim, "txn", "wait-die abort",
                              client=client.name, txn=txn.id,
                              gaddr=hex(gaddr))
                    raise TxnWaitDieError(
                        f"txn {txn.id} (stamp {txn.stamp:#x}) died waiting "
                        f"on {gaddr:#x} held by an older transaction "
                        f"(stamp {holder:#x})")
                # Older than the holder (or holder unknown — a zero stamp
                # reads as "wait", which is always safe): keep waiting.
                continue
            break
        txn.held.append(gaddr)
        yield from self._write_stamp(meta, txn.stamp)

    # ------------------------------------------------------------------
    # commit / abort
    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> Generator[Any, Any, None]:
        """Commit: validate epochs, persist the intent (the commit point),
        apply, clear, unlock.

        Raises :class:`TxnAbortedError` on any pre-commit-point failure
        (everything rolled back); past the commit point the write-set is
        guaranteed to become fully visible even if this client dies —
        recovery rolls it forward from the durable intent.
        """
        client = self.client
        if not txn.active:
            raise TxnError(f"commit of finished transaction {txn.id}")
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        try:
            yield from self._commit_inner(txn)
        finally:
            if rec is not None:
                rec.record(client.name, "txn.commit", t0, op=rec.next_op(),
                           txn=txn.id, writes=len(txn.writes),
                           committed=txn.committed)

    def _commit_inner(self, txn: Transaction) -> Generator[Any, Any, None]:
        client = self.client
        hist = self.sim.history
        writes = [(g, off, txn.writes[(g, off)])
                  for (g, off) in sorted(txn.writes)]
        write_toks: List[int] = []
        if hist is not None:
            for gaddr, offset, data in writes:
                write_toks.append(hist.invoke(
                    client.name, "txn_write", gaddr, txn=txn.id,
                    value=hist.encode(data), offset=offset))
        self._hook("pre-intent", txn)
        # Epoch validation: a fenced epoch means the master may already
        # have recovered our locks — committing would race the next
        # holder.  Clean abort instead.  A mere *local* lease lapse rides
        # the resilience engine (renew probe) first; only the terminal
        # verdict aborts.
        try:
            yield from client._resilient(
                "txn_validate", lambda: self._validate_epoch())
        except FencedError as exc:
            self._abort_cleanup(txn, exc, write_toks)
            raise TxnAbortedError(
                f"txn {txn.id} aborted at commit validation: {exc}",
                reason="fenced") from exc
        if not writes:
            # Read-only: no intent, no apply — just release.
            yield from self._release_locks(txn)
            txn.active = False
            txn.committed = True
            self.m_commits.add()
            if hist is not None:
                hist.ok(txn._tok)
            return
        coordinator = server_of(writes[0][0])
        intent = {"txn": txn.id, "owner": client.uid,
                  "epoch": client.fence_epoch, "writes": writes}
        try:
            yield from client._resilient(
                "txn_intent",
                lambda: self._server_call(coordinator, "txn_intent_put",
                                          intent))
        except FencedError as exc:
            self._abort_cleanup(txn, exc, write_toks)
            raise TxnAbortedError(
                f"txn {txn.id} aborted persisting its intent: {exc}",
                reason="fenced") from exc
        except TxnError as exc:
            # Oversize record / full intent region: clean pre-commit abort.
            self._abort_cleanup(txn, exc, write_toks)
            yield from self._release_locks(txn)
            raise TxnAbortedError(
                f"txn {txn.id} aborted: {exc}", reason="intent") from exc
        except RetryableError as exc:
            # Coordinator unreachable past the retry budget — still before
            # the commit point, so the abort is clean.
            self._abort_cleanup(txn, exc, write_toks)
            yield from self._release_locks(txn)
            raise TxnAbortedError(
                f"txn {txn.id} aborted: {exc}", reason="unavailable") from exc
        # ---- the commit point: the intent record is durable ------------
        txn.committed = True
        if self.sim.tracer is not None:
            trace(self.sim, "txn", "committed (intent durable)",
                  client=client.name, txn=txn.id, writes=len(writes))
        self._hook("post-intent", txn)
        by_server: Dict[int, list] = {}
        for entry in writes:
            by_server.setdefault(server_of(entry[0]), []).append(entry)
        if client._num_shards > 1 and len(
                {client._resolve_shard(g) for g, _, _ in writes}) > 1:
            # The write-set spans shards: if this client dies mid-apply,
            # roll-forward responsibility falls to whichever shard fences
            # it first, applying across shard boundaries.  Counted so the
            # chaos soak can assert that path was actually exercised.
            self.m_cross_shard.add()
        handed_off = False
        first = True
        for sid in sorted(by_server):
            try:
                yield from client._resilient(
                    "txn_apply",
                    lambda sid=sid: self._server_call(
                        sid, "txn_apply", {"writes": by_server[sid]}))
            except FencedError:
                # Past the commit point a fence is a hand-off, not a
                # failure: the master's sweep rolls the intent forward.
                handed_off = True
                break
            if first:
                self._hook("mid-apply", txn)
                first = False
        self._hook("pre-clear", txn)
        if not handed_off:
            try:
                yield from client._resilient(
                    "txn_clear",
                    lambda: self._server_call(coordinator, "txn_intent_clear",
                                              {"txn": txn.id}))
            except FencedError:
                handed_off = True
        self._hook("post-clear", txn)
        if not handed_off:
            yield from self._release_locks(txn)
        else:
            # The master owns cleanup now (roll-forward + force-unlock);
            # drop local bookkeeping so no double release is attempted.
            self.m_handoffs.add()
            txn.held.clear()
            if self.sim.tracer is not None:
                trace(self.sim, "txn", "commit handed off to recovery",
                      client=client.name, txn=txn.id)
        txn.active = False
        self.m_commits.add()
        if hist is not None:
            if handed_off:
                # The writes WILL land (the intent is durable) but may not
                # have yet when the history ends: indeterminate, not ok.
                err = FencedError("commit handed off to master recovery")
                hist.info(txn._tok, err)
                for tok in write_toks:
                    hist.info(tok, err)
            else:
                hist.ok(txn._tok)
                for tok in write_toks:
                    hist.ok(tok)

    def abort(self, txn: Transaction) -> Generator[Any, Any, None]:
        """Roll back: discard the buffered write-set, release the locks.

        Always clean before the commit point — the writes never left this
        client.  Aborting an already-committed transaction is an error.
        """
        client = self.client
        if not txn.active:
            raise TxnError(f"abort of finished transaction {txn.id}")
        if txn.committed:
            raise TxnError(f"abort of committed transaction {txn.id}")
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        hist = self.sim.history
        if hist is not None:
            exc = TxnAbortedError(f"txn {txn.id} aborted by caller")
            for (gaddr, offset), data in sorted(txn.writes.items()):
                tok = hist.invoke(client.name, "txn_write", gaddr, txn=txn.id,
                                  value=hist.encode(data), offset=offset)
                hist.fail(tok, exc)
            hist.fail(txn._tok, exc)
        txn.writes.clear()
        yield from self._release_locks(txn)
        txn.active = False
        self.m_aborts.add()
        if rec is not None:
            rec.record(client.name, "txn.abort", t0, op=rec.next_op(),
                       txn=txn.id)
        if self.sim.tracer is not None:
            trace(self.sim, "txn", "aborted", client=client.name, txn=txn.id)

    def _abort_cleanup(self, txn: Transaction, exc: BaseException,
                       write_toks: List[int]) -> None:
        """Local bookkeeping for a pre-commit-point abort (history + state).
        Lock release is the caller's move — a fenced client must not touch
        the words (the master recovers them), an unfenced one must."""
        hist = self.sim.history
        if hist is not None:
            for tok in write_toks:
                hist.fail(tok, exc)
            hist.fail(txn._tok, exc)
        txn.writes.clear()
        txn.active = False
        self.m_aborts.add()

    def _release_locks(self, txn: Transaction) -> Generator[Any, Any, None]:
        """Release held locks in reverse acquisition order, clearing the
        wait-die stamps first.  Fence-tolerant: once fenced, the master
        owns the words and this client must stop touching them."""
        client = self.client
        for gaddr in reversed(txn.held):
            try:
                meta = yield from client._meta(gaddr)
                yield from self._write_stamp(meta, 0)
                yield from client.locks.release_write(gaddr)
            except FencedError:
                break
            except (RetryableError, TxnError):
                # Unreachable server: its lock table died with it (or the
                # lease sweep will reclaim the word) — move on rather than
                # wedging the abort path.
                continue
        txn.held.clear()

    def _validate_epoch(self) -> Generator[Any, Any, None]:
        self.client._check_lease_fence("txn-commit")
        return
        yield  # pragma: no cover — generator shape for _resilient

    # ------------------------------------------------------------------
    # The retry harness
    # ------------------------------------------------------------------
    def run(self, gaddrs: Iterable[int], body,
            max_attempts: int = 16) -> Generator[Any, Any, Any]:
        """Run ``body(txn)`` (a process helper) as one transaction,
        retrying wait-die deaths under the same stamp until it commits.

        Returns ``body``'s return value.  Any other exception aborts (if
        the txn is still active) and propagates.
        """
        lock_set = tuple(sorted(set(gaddrs)))
        stamp = pack_stamp(self.sim.now, self.client.uid)
        for attempt in range(1, max_attempts + 1):
            try:
                txn = yield from self.begin(lock_set, stamp=stamp)
            except TxnWaitDieError:
                if attempt >= max_attempts:
                    raise
                yield self.sim.timeout(self.client.retry_policy.backoff_ns(
                    attempt, self.client._jitter_rng()))
                continue
            try:
                result = yield from body(txn)
            except BaseException:
                if txn.active and not txn.committed:
                    yield from self.abort(txn)
                raise
            yield from self.commit(txn)
            return result
        raise TxnWaitDieError(
            f"transaction starved after {max_attempts} wait-die attempts")
