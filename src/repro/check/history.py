"""Operation-history recording (the Jepsen ``history`` abstraction).

Every public client op emits two events: an *invoke* when it starts and
exactly one completion when it returns — ``ok`` (took effect, with the
observed result), ``fail`` (definitely did not take effect: failed reads,
ops refused before any side effect), or ``info`` (indeterminate: a write
or sync whose attempt was abandoned mid-flight and may still land).

The recorder keeps one dict per op rather than a flat event stream — the
checker wants ops with ``[t0, t1]`` real-time windows, and merging
invoke/completion pairs up front keeps the JSONL artifact human-greppable
(one line per op, in invocation order).

Values are recorded as short content digests (:meth:`HistoryRecorder.
encode`), not payload bytes: the checker only ever compares values for
equality, and a 4 KiB YCSB record would bloat the artifact a thousandfold
for no extra discriminating power.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

__all__ = ["HistoryRecorder", "load_history"]


class HistoryRecorder:
    """Records per-op invoke/complete events via the ``sim.history`` hooks.

    The client-side contract (see ``GengarClient``):

    * ``tok = invoke(client, op, key, value=..., **kw)`` when a public op
      starts.  ``key`` is the gaddr for keyed ops, ``None`` for ``sync``.
    * exactly one of ``ok(tok, value=...)`` / ``fail(tok, exc)`` /
      ``info(tok, exc)`` when it returns.

    Ops never completed by history end (their process was still parked
    when the run stopped) stay ``"pending"`` — the checker treats pending
    writes like ``info`` (they may have landed) and pending reads like
    ``fail`` (they returned nothing, so they constrain nothing).
    """

    def __init__(self, sim):
        self.sim = sim
        self.ops: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Recording hooks (called from the client's public op wrappers)
    # ------------------------------------------------------------------
    def invoke(self, client: str, op: str, key: Optional[int],
               value: Any = None, **kw: Any) -> int:
        """Open one op; returns the token to complete it with."""
        rec: Dict[str, Any] = {
            "id": len(self.ops),
            "client": client,
            "op": op,
            "key": key,
            "t0": self.sim.now,
            "t1": None,
            "status": "pending",
        }
        if value is not None:
            rec["value"] = value
        if kw:
            rec.update(kw)
        self.ops.append(rec)
        return rec["id"]

    def ok(self, token: int, value: Any = None) -> None:
        """The op completed and definitely took effect."""
        rec = self.ops[token]
        rec["status"] = "ok"
        rec["t1"] = self.sim.now
        if value is not None:
            rec["result"] = value

    def fail(self, token: int, exc: BaseException) -> None:
        """The op failed and definitely did NOT take effect."""
        rec = self.ops[token]
        rec["status"] = "fail"
        rec["t1"] = self.sim.now
        rec["error"] = type(exc).__name__

    def info(self, token: int, exc: BaseException) -> None:
        """The op failed *indeterminately*: its side effects may still
        occur (an abandoned write attempt keeps running in background)."""
        rec = self.ops[token]
        rec["status"] = "info"
        rec["t1"] = self.sim.now
        rec["error"] = type(exc).__name__

    @staticmethod
    def encode(data: Optional[bytes]) -> str:
        """Short stable digest of a payload, for equality-only comparison."""
        if data is None:
            return ""
        return hashlib.blake2b(bytes(data), digest_size=8).hexdigest()

    # ------------------------------------------------------------------
    # Lifecycle + serialization
    # ------------------------------------------------------------------
    def install(self) -> "HistoryRecorder":
        """Start feeding this recorder from the simulator's client hooks."""
        self.sim.history = self
        return self

    def uninstall(self) -> None:
        if self.sim.history is self:
            self.sim.history = None

    def dump_jsonl(self, path: str) -> int:
        """Write the history, one op per line, in invocation order."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.ops:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(self.ops)


def load_history(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL history dumped by :meth:`HistoryRecorder.dump_jsonl`."""
    ops: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                ops.append(json.loads(line))
    return ops
