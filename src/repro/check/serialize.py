"""Offline atomicity + strict-serializability checking for transactions.

Transactional histories (see ``repro.txn``) record three op kinds, all
carrying a ``txn`` id: one spanning ``"txn"`` record per transaction
(``ok`` = committed, ``fail`` = aborted, ``info``/``pending`` =
indeterminate — the client died or handed its commit to recovery, and the
durable intent may still be rolled forward), plus ``"txn_read"`` /
``"txn_write"`` records for the read- and write-sets.

**Atomicity audit** (no search): a read must never observe a value that
only an *aborted* transaction wrote — an aborted or incomplete
transaction leaking even one write is exactly the partial-visibility bug
the intent protocol exists to prevent.

**Strict serializability** (Wing & Gong over whole transactions): the
committed transactions must admit a total order in which every read sees
the latest preceding write to its key, and that order must respect real
time — transaction *b* after *a* whenever *a* completed before *b*
began.  Indeterminate transactions are optional (window ``[t0, ∞)``) and
may be woven in wherever they help, mirroring the register checker's
treatment of indeterminate writes.  Non-transactional reads/writes on
keys that transactions also touch participate as singleton transactions,
so mixed histories are checked whole.

Soundness choices match :mod:`repro.check.linearize`: initial values are
bound by the first read, indeterminate effects are optional, and a state-
cap exhaustion reports "undecided" rather than guessing.  What this
checker deliberately does NOT prove: a committed write to a key nobody
reads again is unobservable in the history (the chaos soak's byte-level
read-back audit covers that), and reads served from a transaction's own
write buffer are internal and unrecorded.

On failure it reports the shortest completion-order prefix of committed
transactions that already fails — the minimal counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.check.linearize import DEFAULT_MAX_STATES, CheckResult, Violation

__all__ = ["check_txn_history"]

_UNBOUND = object()


@dataclass
class _TxnNode:
    """One transaction (or singleton non-txn op) as the search sees it."""

    tid: str
    client: str = ""
    status: str = "indeterminate"  # committed | aborted | indeterminate
    t0: int = 0
    t1: float = float("inf")
    #: (key, value) pairs in read order; key = (gaddr, offset).
    reads: List[Tuple[Tuple[int, int], Any]] = field(default_factory=list)
    writes: Dict[Tuple[int, int], Any] = field(default_factory=dict)
    recs: List[Dict[str, Any]] = field(default_factory=list)


def _key_of(rec: Dict[str, Any]) -> Tuple[int, int]:
    return (rec["key"], rec.get("offset") or 0)


def _collect(ops: List[Dict[str, Any]]) -> List[_TxnNode]:
    """Group the history into transaction nodes (txn ids + singletons)."""
    txns: Dict[str, _TxnNode] = {}

    def node_for(tid: str) -> _TxnNode:
        node = txns.get(tid)
        if node is None:
            node = txns[tid] = _TxnNode(tid=tid)
        return node

    plain: List[Dict[str, Any]] = []
    for rec in ops:
        op = rec["op"]
        if op == "txn":
            node = node_for(rec["txn"])
            node.client = rec["client"]
            node.t0 = rec["t0"]
            if rec["status"] == "ok":
                node.status = "committed"
                node.t1 = rec["t1"]
            elif rec["status"] == "fail":
                node.status = "aborted"
            else:
                node.status = "indeterminate"
            node.recs.insert(0, rec)
        elif op == "txn_read":
            node = node_for(rec["txn"])
            if rec["status"] == "ok":
                node.reads.append((_key_of(rec), rec.get("result")))
            node.recs.append(rec)
        elif op == "txn_write":
            node = node_for(rec["txn"])
            node.writes[_key_of(rec)] = rec.get("value")
            node.recs.append(rec)
        elif op in ("read", "write"):
            plain.append(rec)

    # Non-transactional ops join as singleton transactions — but only on
    # keys transactions also touch; pure register traffic stays with the
    # register checker.
    txn_keys = {k[0] for node in txns.values()
                for k in list(node.writes) + [r[0] for r in node.reads]}
    for rec in plain:
        if rec["key"] not in txn_keys:
            continue
        key = (rec["key"], rec.get("offset") or 0)
        node = _TxnNode(tid=f"_op{rec['id']}", client=rec["client"],
                        t0=rec["t0"], recs=[rec])
        if rec["op"] == "read":
            if rec["status"] != "ok":
                continue  # a failed/pending read constrains nothing
            node.status = "committed"
            node.t1 = rec["t1"]
            node.reads.append((key, rec.get("result")))
        else:
            if rec["status"] == "ok":
                node.status = "committed"
                node.t1 = rec["t1"]
            elif rec["status"] in ("info", "pending"):
                node.status = "indeterminate"
            else:
                continue  # failed writes are definite no-ops
            node.writes[key] = rec.get("value")
        txns[node.tid] = node
    return list(txns.values())


# ----------------------------------------------------------------------
# Atomicity: no read may observe an aborted transaction's write
# ----------------------------------------------------------------------
def _check_atomicity(nodes: List[_TxnNode],
                     violations: List[Violation]) -> None:
    aborted_writes: Dict[Tuple[int, int], Dict[Any, _TxnNode]] = {}
    live_values: Dict[Tuple[int, int], set] = {}
    for node in nodes:
        for key, value in node.writes.items():
            if node.status == "aborted":
                aborted_writes.setdefault(key, {})[value] = node
            else:
                live_values.setdefault(key, set()).add(value)
    for node in nodes:
        if node.status == "aborted":
            continue
        for key, value in node.reads:
            writer = aborted_writes.get(key, {}).get(value)
            if writer is None or value in live_values.get(key, ()):
                continue
            violations.append(Violation(
                key=key[0], kind="txn-atomicity",
                detail=f"{node.client} read a value of {key[0]:#x} that "
                       f"only aborted transaction {writer.tid} ever wrote "
                       "(a rolled-back write became visible)",
                ops=node.recs + writer.recs))


# ----------------------------------------------------------------------
# Strict serializability: Wing & Gong over whole transactions
# ----------------------------------------------------------------------
def _serializable(required: List[_TxnNode], optional: List[_TxnNode],
                  max_states: int) -> Optional[bool]:
    """True/False, or None when the state cap was exhausted (undecided)."""
    if not required:
        return True
    nodes = required + optional
    n_req = len(required)
    windows = [(node.t0, node.t1) for node in nodes]
    preds: List[int] = []
    for i in range(len(nodes)):
        mask = 0
        for j in range(n_req):
            if i != j and windows[j][1] < windows[i][0]:
                mask |= 1 << j
        preds.append(mask)

    full_req = (1 << n_req) - 1
    seen = set()
    # Depth-first over (done-bitmask, key -> value store image).
    stack: List[Tuple[int, int, tuple]] = [(0, 0, ())]
    while stack:
        if len(seen) > max_states:
            return None
        done_req, done_all, state_t = stack.pop()
        if done_req == full_req:
            return True
        memo = (done_all, state_t)
        if memo in seen:
            continue
        seen.add(memo)
        state = dict(state_t)
        for i, node in enumerate(nodes):
            bit = 1 << i
            if done_all & bit:
                continue
            if (preds[i] & ~done_req) & full_req:
                continue  # a completed predecessor is not serialized yet
            # Reads see the store before the txn's own writes (the write
            # buffer was local; recorded reads all hit the global state).
            new_state = None
            legal = True
            for key, value in node.reads:
                src = new_state if new_state is not None else state
                cur = src.get(key, _UNBOUND)
                if cur is _UNBOUND:
                    # First serialized access is a read: bind the unknown
                    # initial value of this key.
                    if new_state is None:
                        new_state = dict(state)
                    new_state[key] = value
                elif cur != value:
                    legal = False
                    break
            if not legal:
                continue
            if new_state is None:
                new_state = dict(state)
            new_state.update(node.writes)
            new_req = done_req | bit if i < n_req else done_req
            stack.append((new_req, done_all | bit,
                          tuple(sorted(new_state.items()))))
    return False


def _minimal_prefix(required: List[_TxnNode], optional: List[_TxnNode],
                    max_states: int) -> List[Dict[str, Any]]:
    """Shortest completion-order prefix of committed txns that fails."""
    for k in range(1, len(required) + 1):
        prefix = required[:k]
        horizon = max(node.t1 for node in prefix)
        opt = [node for node in optional if node.t0 <= horizon]
        if _serializable(prefix, opt, max_states) is False:
            return [rec for node in prefix + opt for rec in node.recs]
    return [rec for node in required + optional for rec in node.recs]


def _components(nodes: List[_TxnNode]) -> List[List[_TxnNode]]:
    """Partition transactions into key-connected components; disjoint
    components serialize independently, which keeps the search small."""
    parent: Dict[Any, Any] = {}

    def find(x):
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for node in nodes:
        keys = list(node.writes) + [key for key, _v in node.reads]
        for key in keys:
            union(("t", node.tid), ("k", key))
    groups: Dict[Any, List[_TxnNode]] = {}
    for node in nodes:
        groups.setdefault(find(("t", node.tid)), []).append(node)
    return list(groups.values())


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_txn_history(ops: List[Dict[str, Any]],
                      max_states: int = DEFAULT_MAX_STATES) -> CheckResult:
    """Audit a transactional history; see the module docstring."""
    nodes = _collect(ops)
    violations: List[Violation] = []
    _check_atomicity(nodes, violations)

    searchable = [n for n in nodes if n.status != "aborted"
                  and (n.reads or n.writes)]
    undecided = 0
    components = _components(searchable)
    for comp in components:
        required = [n for n in comp if n.status == "committed"]
        optional = [n for n in comp if n.status == "indeterminate"]
        required.sort(key=lambda node: (node.t1, node.t0))
        verdict = _serializable(required, optional, max_states)
        if verdict is None:
            undecided += 1
        elif verdict is False:
            witness = _minimal_prefix(required, optional, max_states)
            violations.append(Violation(
                key=None, kind="txn-serializability",
                detail="no strict-serializable order of the committed "
                       "transactions exists within their real-time windows",
                ops=witness))

    by_status: Dict[str, int] = {"committed": 0, "aborted": 0,
                                 "indeterminate": 0}
    real_txns = [n for n in nodes if not n.tid.startswith("_op")]
    for node in real_txns:
        by_status[node.status] += 1
    stats = {
        "ops": len(ops),
        "txns": len(real_txns),
        "committed": by_status["committed"],
        "aborted": by_status["aborted"],
        "indeterminate": by_status["indeterminate"],
        "components": len(components),
        "undecided_components": undecided,
        "violations": len(violations),
    }
    return CheckResult(ok=not violations, violations=violations, stats=stats)
