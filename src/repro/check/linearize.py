"""Offline linearizability checking over a recorded op history.

Register model (``read``/``write`` per gaddr): the classic Wing & Gong
search.  A history is linearizable iff every completed op can be assigned
a single *linearization point* inside its ``[t0, t1]`` real-time window
such that each read returns the latest preceding write.  The search walks
prefixes of such assignments, memoizing on (set of linearized ops,
register value) so equivalent interleavings are explored once.

Three deliberate soundness choices, all of which *admit* more histories
(a reported violation is always real; some real violations may pass):

* **Indeterminate writes are optional.**  An ``info``/``pending`` write
  (abandoned attempt, run ended mid-op) may have landed at any point from
  its invocation onward — its window is ``[t0, ∞)`` and the search may
  include or omit it.
* **The initial value is unknown.**  A register's first linearized read
  *binds* the initial value rather than being checked against one: the
  pool hands out uninitialized memory, so whatever the first read saw is
  taken as ground truth and later reads must stay consistent with it.
* **Batched ops share one conservative window.**  ``gread_many`` /
  ``gwrite_batch`` record each member over the whole batch's window; a
  wider window only adds legal linearization points.

Lock model (``lock``/``unlock`` per gaddr): two audits that need no
search.  *Mutual exclusion*: a client definitely holds the lock from its
acquire's ``ok`` to its release's invocation; two such definite holds on
one key must not overlap when either is exclusive.  *Epoch monotonicity*:
the fencing epoch a client presents in completed lock ops never
decreases — a zombie re-locking under a retired epoch is exactly the
split-brain the fence exists to stop.

On failure the checker reports the shortest prefix (in completion order)
of the key's required ops that is itself non-linearizable — the minimal
counterexample a human (or CI artifact reader) has to stare at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CheckResult", "Violation", "check_history"]

#: Register value before any write or read-binding has been linearized.
_UNBOUND = object()

#: Per-key cap on memoized search states; a key that exhausts it is
#: reported "undecided" rather than silently passed or failed.
DEFAULT_MAX_STATES = 200_000


@dataclass
class Violation:
    """One confirmed consistency violation on one key."""

    key: Optional[int]
    kind: str           # "linearizability" | "mutual-exclusion" | "epoch-regression"
    detail: str
    ops: List[Dict[str, Any]] = field(default_factory=list)

    def __str__(self) -> str:
        where = f"key={self.key:#x}" if isinstance(self.key, int) else f"key={self.key}"
        return f"{self.kind} violation on {where}: {self.detail} ({len(self.ops)} ops)"


@dataclass
class CheckResult:
    """Outcome of :func:`check_history` over one recorded history."""

    ok: bool
    violations: List[Violation]
    stats: Dict[str, Any]

    def counterexample(self) -> List[Dict[str, Any]]:
        """The first violation's minimal op set (empty when ok)."""
        return self.violations[0].ops if self.violations else []

    def dump_counterexample(self, path: str) -> int:
        """Write the first violation's ops as JSONL (the CI artifact)."""
        import json

        ops = self.counterexample()
        with open(path, "w", encoding="utf-8") as fh:
            if self.violations:
                v = self.violations[0]
                fh.write(json.dumps({
                    "violation": v.kind, "key": v.key, "detail": v.detail,
                }, sort_keys=True) + "\n")
            for rec in ops:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(ops)


# ----------------------------------------------------------------------
# Register model: per-key Wing & Gong search
# ----------------------------------------------------------------------
def _window(rec: Dict[str, Any]) -> Tuple[int, float]:
    """Real-time window an op's linearization point must fall in."""
    t1 = rec.get("t1")
    if rec["status"] in ("info", "pending") or t1 is None:
        return rec["t0"], float("inf")
    return rec["t0"], t1


def _linearizable(required: List[Dict[str, Any]],
                  optional: List[Dict[str, Any]],
                  max_states: int) -> Optional[bool]:
    """True/False, or None when the state cap was exhausted (undecided).

    ``required`` ops must all be linearized; ``optional`` (indeterminate
    writes) may be woven in wherever they help.  Precedence: op *b* must
    come after op *a* iff ``a`` is required and ``a.t1 < b.t0`` — only
    completed ops constrain real time.
    """
    ops = required + optional
    n_req = len(required)
    if not required:
        return True
    windows = [_window(rec) for rec in ops]
    values = [
        rec.get("result") if rec["op"] == "read" else rec.get("value")
        for rec in ops
    ]
    # preds[i]: required ops whose window closed before i's opened.
    preds: List[int] = []
    for i, rec in enumerate(ops):
        mask = 0
        for j in range(n_req):
            if i != j and windows[j][1] < windows[i][0]:
                mask |= 1 << j
        preds.append(mask)

    full_req = (1 << n_req) - 1
    seen = set()
    # Depth-first over (done-bitmask over all ops, register value).
    # done's low n_req bits are the required ops; goal: all of them set.
    stack = [(0, 0, _UNBOUND)]
    while stack:
        if len(seen) > max_states:
            return None
        done_req, done_all, val = stack.pop()
        if done_req == full_req:
            return True
        key = (done_all, val if val is not _UNBOUND else _UNBOUND)
        if key in seen:
            continue
        seen.add(key)
        for i, rec in enumerate(ops):
            bit = 1 << i
            if done_all & bit:
                continue
            if (preds[i] & ~done_req) & full_req:
                continue  # a completed predecessor is not linearized yet
            if rec["op"] == "read":
                if val is _UNBOUND:
                    # First linearized access is a read: it *binds* the
                    # (unknown) initial value.
                    stack.append((done_req | bit, done_all | bit, values[i]))
                elif values[i] == val:
                    stack.append((done_req | bit, done_all | bit, val))
            else:  # write
                new_req = done_req | bit if i < n_req else done_req
                stack.append((new_req, done_all | bit, values[i]))
    return False


def _minimal_prefix(required: List[Dict[str, Any]],
                    optional: List[Dict[str, Any]],
                    max_states: int) -> List[Dict[str, Any]]:
    """Shortest completion-order prefix of ``required`` that already fails."""
    for k in range(1, len(required) + 1):
        prefix = required[:k]
        horizon = max(_window(rec)[1] for rec in prefix)
        opt = [rec for rec in optional if rec["t0"] <= horizon]
        if _linearizable(prefix, opt, max_states) is False:
            return prefix + opt
    return required + optional  # cap interference; fall back to everything


def _check_register_key(key: int, ops: List[Dict[str, Any]],
                        max_states: int,
                        violations: List[Violation]) -> Optional[str]:
    required: List[Dict[str, Any]] = []
    optional: List[Dict[str, Any]] = []
    for rec in ops:
        if rec["op"] == "read":
            if rec["status"] == "ok":
                required.append(rec)
            # failed/pending reads returned nothing: no constraint
        elif rec["op"] == "write":
            if rec["status"] == "ok":
                required.append(rec)
            elif rec["status"] in ("info", "pending"):
                optional.append(rec)
            # failed writes are definite no-ops
    required.sort(key=lambda rec: (_window(rec)[1], rec["t0"]))
    verdict = _linearizable(required, optional, max_states)
    if verdict is None:
        return "undecided"
    if verdict is False:
        witness = _minimal_prefix(required, optional, max_states)
        violations.append(Violation(
            key=key, kind="linearizability",
            detail="no valid linearization of the completed reads/writes "
                   "exists within their real-time windows",
            ops=witness))
    return None


# ----------------------------------------------------------------------
# Lock model: mutual exclusion + fencing-epoch monotonicity
# ----------------------------------------------------------------------
def _check_lock_key(key: int, ops: List[Dict[str, Any]],
                    violations: List[Violation]) -> None:
    by_client: Dict[str, List[Dict[str, Any]]] = {}
    for rec in ops:
        by_client.setdefault(rec["client"], []).append(rec)

    # Epoch monotonicity per client: completed lock-plane ops never carry
    # an epoch lower than one this client already presented.
    for client, recs in by_client.items():
        last: Optional[Tuple[int, Dict[str, Any]]] = None
        for rec in recs:
            if rec["status"] != "ok" or "epoch" not in rec:
                continue
            if last is not None and rec["epoch"] < last[0]:
                violations.append(Violation(
                    key=key, kind="epoch-regression",
                    detail=f"{client} completed a lock op under epoch "
                           f"{rec['epoch']} after presenting epoch {last[0]}",
                    ops=[last[1], rec]))
            last = (rec["epoch"], rec)

    # Definite holds: [acquire.ok .. release.invoke] per client.  An
    # acquire with no later release collapses to a point — the lock may
    # have been recovered from a crashed holder at an unknown time, so
    # nothing past the ok instant is provable.  A release that *failed*
    # (fenced zombie, lapsed lease) collapses the same way: the failure
    # means the master already took the lock back at some unknown earlier
    # instant, so the release's invocation time proves nothing.
    holds: List[Tuple[int, float, bool, Dict[str, Any]]] = []
    for client, recs in by_client.items():
        pending: Optional[Dict[str, Any]] = None
        for rec in recs:
            if rec["op"] == "lock" and rec["status"] == "ok":
                pending = rec
            elif rec["op"] == "unlock" and pending is not None:
                end = rec["t0"] if rec["status"] == "ok" else pending["t1"]
                holds.append((pending["t1"], end,
                              bool(pending.get("write", True)), pending))
                pending = None
        if pending is not None:
            holds.append((pending["t1"], pending["t1"],
                          bool(pending.get("write", True)), pending))

    holds.sort()
    for i in range(len(holds)):
        s_i, e_i, w_i, a_i = holds[i]
        for j in range(i + 1, len(holds)):
            s_j, e_j, w_j, a_j = holds[j]
            if s_j >= e_i:
                break  # sorted by start: no later hold can overlap i
            if a_i["client"] == a_j["client"] or not (w_i or w_j):
                continue  # re-entrant same client / two shared holds
            violations.append(Violation(
                key=key, kind="mutual-exclusion",
                detail=f"{a_i['client']} and {a_j['client']} provably held "
                       f"the lock simultaneously "
                       f"([{s_i}, {e_i}] vs [{s_j}, {e_j}] ns)",
                ops=[a_i, a_j]))


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_history(ops: List[Dict[str, Any]],
                  max_states: int = DEFAULT_MAX_STATES) -> CheckResult:
    """Audit one recorded history; see the module docstring for models."""
    registers: Dict[int, List[Dict[str, Any]]] = {}
    locks: Dict[int, List[Dict[str, Any]]] = {}
    for rec in ops:
        key = rec.get("key")
        if key is None:
            continue  # sync and other keyless ops don't bind to a model
        if rec["op"] in ("read", "write"):
            registers.setdefault(key, []).append(rec)
        elif rec["op"] in ("lock", "unlock"):
            locks.setdefault(key, []).append(rec)

    violations: List[Violation] = []
    undecided: List[int] = []
    for key in sorted(registers):
        if _check_register_key(key, registers[key], max_states,
                               violations) == "undecided":
            undecided.append(key)
    for key in sorted(locks):
        _check_lock_key(key, locks[key], violations)

    stats = {
        "ops": len(ops),
        "register_keys": len(registers),
        "lock_keys": len(locks),
        "undecided_keys": undecided,
        "violations": len(violations),
    }
    return CheckResult(ok=not violations, violations=violations, stats=stats)
