"""Jepsen-style consistency auditing for the Gengar pool.

Two halves, wired so the simulator pays nothing unless both are asked for:

* :mod:`repro.check.history` — an operation-history recorder the client
  feeds through ``sim.history`` hooks: one *invoke* event when a public op
  starts, one completion event (*ok* / *fail* / *info*) when it returns.
  ``fail`` is a definite no-op (safe to ignore), ``info`` is indeterminate
  (an abandoned write may still land).  With ``sim.history`` left ``None``
  (the default) the hooks cost one attribute read per op and zero
  simulated events.

* :mod:`repro.check.linearize` — an offline checker over a recorded
  history: a per-key Wing&Gong linearizability search for the register
  ops (``read``/``write``), plus lock-model audits (mutual exclusion of
  exclusive holds, per-client fencing-epoch monotonicity).  On failure it
  extracts a minimal failing prefix as the counterexample.

* :mod:`repro.check.serialize` — the transactional sibling: an
  atomicity audit (no aborted transaction's write may ever be observed)
  plus a strict-serializability search over whole transactions grouped
  by txn id, with the same minimal-counterexample extraction.

The ``repro check`` CLI verb replays a JSONL history file through the
checkers; ``bench/chaos.py --check-linearizable`` /
``--check-serializable`` record and check a history in one run.
"""

from repro.check.history import HistoryRecorder, load_history
from repro.check.linearize import CheckResult, Violation, check_history
from repro.check.serialize import check_txn_history

__all__ = [
    "HistoryRecorder",
    "load_history",
    "CheckResult",
    "Violation",
    "check_history",
    "check_txn_history",
]
