"""Applications built on the pool: the workloads the paper evaluates with."""

from repro.apps.array import DistributedArray, U64Array
from repro.apps.graph import PageRankEngine, reference_pagerank
from repro.apps.kvstore import KvStore
from repro.apps.mapreduce import MapReduceEngine, distributed_sort, grep_job, wordcount_job
from repro.apps.sharedlog import SharedLog

__all__ = [
    "KvStore",
    "MapReduceEngine",
    "wordcount_job",
    "grep_job",
    "distributed_sort",
    "SharedLog",
    "DistributedArray",
    "U64Array",
    "PageRankEngine",
    "reference_pagerank",
]
