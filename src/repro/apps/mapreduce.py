"""A MapReduce engine whose data plane lives in the pool.

The paper's MapReduce evaluation stores job input and shuffle data in the
distributed memory pool.  This engine does the same:

1. **Ingest** — input splits are written as pool objects.
2. **Map** — worker processes read their splits (``gread``), run the map
   function (charged CPU time proportional to bytes), partition the output
   by reducer, serialize each partition, and write it back (``gwrite``) —
   the shuffle data.
3. **Reduce** — workers read every map output for their partition, merge
   with the reduce function, and write the final output objects.

The computation is real (wordcount counts actual words), so tests verify
both answers and timing behaviour.  Mappers and reducers are spread
round-robin over the system's clients, exactly how the paper's compute
nodes share the pool.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Tuple

#: CPU model: ~2 GB/s of per-byte map/reduce processing.
CPU_NS_PER_BYTE = 0.5
#: Fixed task overheads (scheduling, setup).
TASK_OVERHEAD_NS = 5_000


class MapReduceError(Exception):
    """Job configuration or execution failure."""


@dataclass
class JobSpec:
    """One MapReduce job.

    ``map_fn(chunk: bytes) -> dict[key, value]`` and
    ``reduce_fn(values: list[value]) -> value`` must be pure.
    ``partition_fn`` routes keys to reducers (defaults to hash).
    """

    name: str
    map_fn: Callable[[bytes], Dict[Any, Any]]
    reduce_fn: Callable[[List[Any]], Any]
    num_reducers: int = 4
    partition_fn: Callable[[Any, int], int] = field(
        default=lambda key, r: hash(key) % r
    )


@dataclass
class JobResult:
    """Outcome of a run: the merged output and timing."""

    output: Dict[Any, Any]
    elapsed_ns: int
    map_time_ns: int
    reduce_time_ns: int
    shuffle_bytes: int


class MapReduceEngine:
    """Runs jobs over one built system's clients."""

    def __init__(self, clients: List, max_object_bytes: int = 128 * 1024):
        if not clients:
            raise MapReduceError("need at least one client")
        self.clients = clients
        self.max_object_bytes = max_object_bytes

    # ------------------------------------------------------------------
    def ingest(self, client, chunks: List[bytes]) -> Generator[Any, Any, List[int]]:
        """Write input splits into the pool; returns their addresses."""
        addrs: List[int] = []
        for chunk in chunks:
            if len(chunk) > self.max_object_bytes:
                raise MapReduceError(
                    f"chunk of {len(chunk)} bytes exceeds the object cap "
                    f"{self.max_object_bytes}"
                )
            gaddr = yield from client.gmalloc(len(chunk))
            yield from client.gwrite(gaddr, chunk)
            addrs.append(gaddr)
        yield from client.gsync()
        return addrs

    def run(self, job: JobSpec, input_addrs: List[int],
            input_sizes: List[int]) -> Generator[Any, Any, JobResult]:
        """Execute ``job`` over already-ingested input splits."""
        if len(input_addrs) != len(input_sizes):
            raise MapReduceError("addrs and sizes length mismatch")
        sim = self.clients[0].sim
        start = sim.now
        shuffle: Dict[Tuple[int, int], Tuple[int, int]] = {}  # (m, r) -> (gaddr, size)
        shuffle_bytes = 0

        # ---- Map phase -------------------------------------------------
        def mapper(m: int, gaddr: int, size: int):
            client = self.clients[m % len(self.clients)]
            yield client.sim.timeout(TASK_OVERHEAD_NS)
            chunk = yield from client.gread(gaddr)
            yield from client.node.cpu_work(int(len(chunk) * CPU_NS_PER_BYTE))
            output = job.map_fn(chunk)
            partitions: List[Dict[Any, Any]] = [dict() for _ in range(job.num_reducers)]
            for key, value in output.items():
                partitions[job.partition_fn(key, job.num_reducers)][key] = value
            for r, part in enumerate(partitions):
                blob = pickle.dumps(part, protocol=pickle.HIGHEST_PROTOCOL)
                out_addr = yield from client.gmalloc(len(blob))
                yield from client.gwrite(out_addr, blob)
                shuffle[(m, r)] = (out_addr, len(blob))
            yield from client.gsync()

        map_start = sim.now
        procs = [
            sim.spawn(mapper(m, gaddr, size))
            for m, (gaddr, size) in enumerate(zip(input_addrs, input_sizes))
        ]
        yield sim.all_of(procs)
        map_time = sim.now - map_start
        shuffle_bytes = sum(size for _addr, size in shuffle.values())

        # ---- Reduce phase ----------------------------------------------
        results: Dict[int, Dict[Any, Any]] = {}

        def reducer(r: int):
            client = self.clients[r % len(self.clients)]
            yield client.sim.timeout(TASK_OVERHEAD_NS)
            merged: Dict[Any, List[Any]] = {}
            for m in range(len(input_addrs)):
                addr, size = shuffle[(m, r)]
                blob = yield from client.gread(addr)
                yield from client.node.cpu_work(int(len(blob) * CPU_NS_PER_BYTE))
                for key, value in pickle.loads(blob).items():
                    merged.setdefault(key, []).append(value)
            reduced = {key: job.reduce_fn(values) for key, values in merged.items()}
            blob = pickle.dumps(reduced, protocol=pickle.HIGHEST_PROTOCOL)
            if len(blob) <= self.max_object_bytes:
                out_addr = yield from client.gmalloc(len(blob))
                yield from client.gwrite(out_addr, blob)
                yield from client.gsync()
            results[r] = reduced

        reduce_start = sim.now
        procs = [sim.spawn(reducer(r)) for r in range(job.num_reducers)]
        yield sim.all_of(procs)
        reduce_time = sim.now - reduce_start

        output: Dict[Any, Any] = {}
        for partial in results.values():
            output.update(partial)
        return JobResult(
            output=output,
            elapsed_ns=sim.now - start,
            map_time_ns=map_time,
            reduce_time_ns=reduce_time,
            shuffle_bytes=shuffle_bytes,
        )


# ---------------------------------------------------------------------------
# Canonical jobs
# ---------------------------------------------------------------------------
def wordcount_job(num_reducers: int = 4) -> JobSpec:
    """Count word occurrences in text splits."""

    def map_fn(chunk: bytes) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for word in chunk.decode().split():
            counts[word] = counts.get(word, 0) + 1
        return counts

    return JobSpec(name="wordcount", map_fn=map_fn, reduce_fn=sum,
                   num_reducers=num_reducers)


def grep_job(needle: str, num_reducers: int = 2) -> JobSpec:
    """Count occurrences of words containing ``needle``."""

    def map_fn(chunk: bytes) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for word in chunk.decode().split():
            if needle in word:
                counts[word] = counts.get(word, 0) + 1
        return counts

    return JobSpec(name=f"grep:{needle}", map_fn=map_fn, reduce_fn=sum,
                   num_reducers=num_reducers)


def distributed_sort(clients: List, records: List[int],
                     num_partitions: int = 4) -> Generator[Any, Any, Tuple[List[int], int]]:
    """Sample-sort integer records through the pool.

    Partitions by sampled splitters (map), sorts each partition (reduce),
    and returns ``(sorted_records, elapsed_ns)``.  A separate top-level
    helper because its dataflow (range partitioning) differs from the
    hash-partitioned engine.
    """
    if not records:
        return [], 0
    sim = clients[0].sim
    start = sim.now
    # Splitters from a deterministic sample.
    sample = sorted(records[:: max(1, len(records) // 64)])
    splitters = [
        sample[(i + 1) * len(sample) // num_partitions - 1]
        for i in range(num_partitions - 1)
    ]

    def route(value: int) -> int:
        for i, s in enumerate(splitters):
            if value <= s:
                return i
        return num_partitions - 1

    # Partition phase: write each partition's records into the pool.
    partitions: List[List[int]] = [[] for _ in range(num_partitions)]
    for value in records:
        partitions[route(value)].append(value)

    addrs: List[Tuple[int, int]] = []

    def writer(p: int):
        client = clients[p % len(clients)]
        blob = pickle.dumps(partitions[p], protocol=pickle.HIGHEST_PROTOCOL)
        yield from client.node.cpu_work(int(len(blob) * CPU_NS_PER_BYTE))
        gaddr = yield from client.gmalloc(max(1, len(blob)))
        yield from client.gwrite(gaddr, blob)
        yield from client.gsync()
        addrs.append((p, gaddr))

    yield sim.all_of([sim.spawn(writer(p)) for p in range(num_partitions)])

    # Sort phase: each worker reads its partition, sorts, returns.
    sorted_parts: Dict[int, List[int]] = {}

    def sorter(p: int, gaddr: int):
        client = clients[p % len(clients)]
        blob = yield from client.gread(gaddr)
        values = pickle.loads(blob)
        yield from client.node.cpu_work(int(len(blob) * CPU_NS_PER_BYTE))
        sorted_parts[p] = sorted(values)

    yield sim.all_of([sim.spawn(sorter(p, gaddr)) for p, gaddr in addrs])

    merged: List[int] = []
    for p in range(num_partitions):
        merged.extend(sorted_parts.get(p, []))
    return merged, sim.now - start
