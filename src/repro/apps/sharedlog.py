"""A multi-user shared append log (the consistency showcase).

Several clients append records to one log concurrently.  The log is a pool
data structure: a header object holding the tail index, plus a fixed array
of record slots.  Appends are serialized by the header's write lock —
Gengar's one-sided reader/writer locks — and the release-consistency
guarantee makes every append visible to the next lock holder.

This is the workload behind the sharing-overhead experiment (E11).
"""

from __future__ import annotations

import struct
from typing import Any, Generator, List

_HEADER = struct.Struct("<Q")  # tail index


class SharedLogError(Exception):
    """Log full or malformed record."""


class SharedLog:
    """A bounded multi-writer log in the pool."""

    def __init__(self, header_gaddr: int, slot_gaddrs: List[int], record_size: int):
        self.header_gaddr = header_gaddr
        self.slot_gaddrs = slot_gaddrs
        self.record_size = record_size

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, client, capacity: int, record_size: int) -> Generator[Any, Any, "SharedLog"]:
        """Allocate the log's objects and zero the tail."""
        if capacity < 1 or record_size < 1:
            raise SharedLogError("capacity and record size must be positive")
        header = yield from client.gmalloc(64)
        yield from client.gwrite(header, _HEADER.pack(0) + bytes(56))
        slots = []
        for _ in range(capacity):
            slots.append((yield from client.gmalloc(record_size)))
        yield from client.gsync()
        return cls(header, slots, record_size)

    @property
    def capacity(self) -> int:
        return len(self.slot_gaddrs)

    # ------------------------------------------------------------------
    def append(self, client, record: bytes) -> Generator[Any, Any, int]:
        """Append one record; returns its index.  Raises when full."""
        if len(record) != self.record_size:
            raise SharedLogError(
                f"record of {len(record)} bytes; log is fixed at {self.record_size}"
            )
        yield from client.glock(self.header_gaddr, write=True)
        try:
            raw = yield from client.gread(self.header_gaddr, length=8)
            tail = _HEADER.unpack(raw)[0]
            if tail >= self.capacity:
                raise SharedLogError("log full")
            yield from client.gwrite(self.slot_gaddrs[tail], record)
            yield from client.gwrite(self.header_gaddr, _HEADER.pack(tail + 1))
        finally:
            yield from client.gunlock(self.header_gaddr, write=True)
        return tail

    def length(self, client) -> Generator[Any, Any, int]:
        """Current record count (shared-lock read of the tail)."""
        yield from client.glock(self.header_gaddr, write=False)
        try:
            raw = yield from client.gread(self.header_gaddr, length=8)
        finally:
            yield from client.gunlock(self.header_gaddr, write=False)
        return _HEADER.unpack(raw)[0]

    def read(self, client, index: int) -> Generator[Any, Any, bytes]:
        """Read one record by index."""
        if not 0 <= index < self.capacity:
            raise SharedLogError(f"index {index} out of range")
        data = yield from client.gread(self.slot_gaddrs[index])
        return data

    def read_all(self, client) -> Generator[Any, Any, List[bytes]]:
        """Snapshot every appended record, consistently."""
        n = yield from self.length(client)
        records = []
        for i in range(n):
            records.append((yield from self.read(client, i)))
        return records
