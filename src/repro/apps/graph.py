"""Distributed PageRank over pool-resident graph state.

The third application domain (after key-value serving and MapReduce):
iterative graph analytics whose entire state — adjacency lists and both
rank vectors — lives in the hybrid memory pool.  Each iteration, every
worker re-reads all rank blocks, which makes them the hot set Gengar's
cache is designed to catch; rank-block writes flow through the proxy.

The computation is exact synchronous PageRank with double-buffered rank
blocks, so tests can verify the result against a local reference to
floating-point accuracy.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Tuple

#: CPU model for rank arithmetic, per scanned edge.
CPU_NS_PER_EDGE = 5


class GraphError(Exception):
    """Malformed graph or engine misuse."""


def _partition_of(vertex: int, num_partitions: int) -> int:
    return vertex % num_partitions


@dataclass
class _Partition:
    """Pool addresses of one partition's state."""

    adjacency_gaddr: int
    adjacency_size: int
    rank_gaddrs: Tuple[int, int]  # double buffer
    vertices: List[int]


class PageRankEngine:
    """Synchronous PageRank with pool-resident state.

    Usage (inside a simulation process)::

        engine = PageRankEngine(system.clients, num_partitions=4)
        yield from engine.load(client, edges, num_vertices)
        ranks = yield from engine.run(iterations=10)
    """

    def __init__(self, clients: List, num_partitions: int = 4,
                 damping: float = 0.85):
        if not clients:
            raise GraphError("need at least one client")
        if num_partitions < 1:
            raise GraphError("need at least one partition")
        if not 0.0 < damping < 1.0:
            raise GraphError("damping must be in (0, 1)")
        self.clients = clients
        self.num_partitions = num_partitions
        self.damping = damping
        self.num_vertices = 0
        self._partitions: List[_Partition] = []
        self._current = 0  # which rank buffer holds the live values

    # ------------------------------------------------------------------
    def load(self, client, edges: Iterable[Tuple[int, int]],
             num_vertices: int) -> Generator[Any, Any, None]:
        """Ingest the graph: build per-partition adjacency and rank blocks."""
        if num_vertices < 1:
            raise GraphError("graph must have vertices")
        self.num_vertices = num_vertices
        out_edges: Dict[int, List[int]] = {}
        for src, dst in edges:
            if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
                raise GraphError(f"edge ({src}, {dst}) outside vertex range")
            out_edges.setdefault(src, []).append(dst)

        initial = 1.0 / num_vertices
        for p in range(self.num_partitions):
            vertices = list(range(p, num_vertices, self.num_partitions))
            adjacency = {v: out_edges.get(v, []) for v in vertices}
            blob = pickle.dumps(adjacency, protocol=pickle.HIGHEST_PROTOCOL)
            adj_gaddr = yield from client.gmalloc(len(blob))
            yield from client.gwrite(adj_gaddr, blob)
            rank_bytes = struct.pack(f"<{len(vertices)}d",
                                     *([initial] * len(vertices)))
            buffers = []
            for _ in range(2):
                g = yield from client.gmalloc(max(8, len(rank_bytes)))
                yield from client.gwrite(g, rank_bytes)
                buffers.append(g)
            self._partitions.append(_Partition(
                adjacency_gaddr=adj_gaddr,
                adjacency_size=len(blob),
                rank_gaddrs=(buffers[0], buffers[1]),
                vertices=vertices,
            ))
        yield from client.gsync()

    # ------------------------------------------------------------------
    def run(self, iterations: int = 10) -> Generator[Any, Any, Dict[int, float]]:
        """Execute ``iterations`` synchronous PageRank steps; returns ranks."""
        if not self._partitions:
            raise GraphError("load() a graph first")
        sim = self.clients[0].sim
        for _ in range(iterations):
            yield from self._one_iteration(sim)
        ranks = yield from self._read_ranks(self.clients[0])
        return ranks

    def _one_iteration(self, sim) -> Generator[Any, Any, None]:
        src_buf = self._current
        dst_buf = 1 - src_buf

        def worker(p: int):
            client = self.clients[p % len(self.clients)]
            part = self._partitions[p]
            # Pull the full current rank vector (the hot, re-read state).
            ranks: Dict[int, float] = {}
            dangling_mass = 0.0
            adjacency_all: Dict[int, List[int]] = {}
            for other in self._partitions:
                raw = yield from client.gread(other.rank_gaddrs[src_buf])
                values = struct.unpack(f"<{len(other.vertices)}d",
                                       raw[: 8 * len(other.vertices)])
                for v, r in zip(other.vertices, values):
                    ranks[v] = r
                blob = yield from client.gread(other.adjacency_gaddr,
                                               length=other.adjacency_size)
                adjacency_all.update(pickle.loads(blob))
            edge_count = sum(len(ns) for ns in adjacency_all.values())
            yield from client.node.cpu_work(edge_count * CPU_NS_PER_EDGE)
            for v, neighbours in adjacency_all.items():
                if not neighbours:
                    dangling_mass += ranks[v]
            # New ranks for the local vertices only.
            base = (1.0 - self.damping) / self.num_vertices
            dangling = self.damping * dangling_mass / self.num_vertices
            contrib: Dict[int, float] = {v: 0.0 for v in part.vertices}
            for src, neighbours in adjacency_all.items():
                if not neighbours:
                    continue
                share = ranks[src] / len(neighbours)
                for dst in neighbours:
                    if _partition_of(dst, self.num_partitions) == p:
                        contrib[dst] += share
            new_values = [
                base + dangling + self.damping * contrib[v]
                for v in part.vertices
            ]
            payload = struct.pack(f"<{len(new_values)}d", *new_values)
            yield from client.gwrite(part.rank_gaddrs[dst_buf], payload)
            yield from client.gsync()

        procs = [sim.spawn(worker(p)) for p in range(self.num_partitions)]
        yield sim.all_of(procs)
        self._current = dst_buf

    def _read_ranks(self, client) -> Generator[Any, Any, Dict[int, float]]:
        ranks: Dict[int, float] = {}
        for part in self._partitions:
            raw = yield from client.gread(part.rank_gaddrs[self._current])
            values = struct.unpack(f"<{len(part.vertices)}d",
                                   raw[: 8 * len(part.vertices)])
            for v, r in zip(part.vertices, values):
                ranks[v] = r
        return ranks


def reference_pagerank(edges: Iterable[Tuple[int, int]], num_vertices: int,
                       iterations: int, damping: float = 0.85) -> Dict[int, float]:
    """Plain-Python reference, bit-compatible with the distributed engine."""
    out_edges: Dict[int, List[int]] = {}
    for src, dst in edges:
        out_edges.setdefault(src, []).append(dst)
    ranks = {v: 1.0 / num_vertices for v in range(num_vertices)}
    for _ in range(iterations):
        dangling = sum(r for v, r in ranks.items() if not out_edges.get(v))
        base = (1.0 - damping) / num_vertices + damping * dangling / num_vertices
        new = {v: 0.0 for v in range(num_vertices)}
        for src, neighbours in out_edges.items():
            if not neighbours:
                continue
            share = ranks[src] / len(neighbours)
            for dst in neighbours:
                new[dst] += share
        ranks = {v: base + damping * new[v] for v in range(num_vertices)}
    return ranks
