"""A key-value store over any DSHM system (the YCSB target).

Each record is one pool object of ``value_size`` bytes; the store keeps a
key -> gaddr index plus a sorted key list for scans.  The index is metadata
that real deployments distribute out of band (or keep in a directory
service); here every worker shares the in-process index and pays a small
CPU charge per lookup, so the *data path* — the part the paper's systems
differ on — dominates measurements.

All mutating/reading methods are simulation-process helpers taking the
calling worker's client explicitly, so any number of workers (on any
client) can drive one store concurrently.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Generator, List


class KvError(Exception):
    """Unknown key or invalid store usage."""


class KvStore:
    """Hash-partitioned KV store with ordered scans."""

    def __init__(self, value_size: int):
        if value_size < 1:
            raise ValueError("value size must be positive")
        self.value_size = value_size
        self._index: Dict[int, int] = {}  # key_id -> gaddr
        self._sorted_keys: List[int] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key_id: int) -> bool:
        return key_id in self._index

    def gaddr_of(self, key_id: int) -> int:
        """The pool address backing ``key_id`` (raises for unknown keys)."""
        try:
            return self._index[key_id]
        except KeyError:
            raise KvError(f"unknown key {key_id}") from None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, client, key_ids, value_fn) -> Generator[Any, Any, None]:
        """Allocate and write records for ``key_ids`` (bulk load phase)."""
        for key_id in key_ids:
            yield from self.insert(client, key_id, value_fn(key_id))
        yield from client.gsync()

    def insert(self, client, key_id: int, value: bytes) -> Generator[Any, Any, None]:
        """Add a new record."""
        if key_id in self._index:
            raise KvError(f"duplicate key {key_id}")
        if len(value) != self.value_size:
            raise KvError(
                f"value of {len(value)} bytes; store is fixed at {self.value_size}"
            )
        gaddr = yield from client.gmalloc(self.value_size)
        yield from client.gwrite(gaddr, value)
        self._index[key_id] = gaddr
        bisect.insort(self._sorted_keys, key_id)

    # ------------------------------------------------------------------
    # The YCSB operation set
    # ------------------------------------------------------------------
    def get(self, client, key_id: int) -> Generator[Any, Any, bytes]:
        """Point read."""
        gaddr = self.gaddr_of(key_id)
        data = yield from client.gread(gaddr)
        return data

    def multi_get(self, client, key_ids) -> Generator[Any, Any, List[bytes]]:
        """Batched point reads, in argument order.

        Routes through :meth:`~repro.core.client.GengarClient.gread_many`,
        so the reads go out as one doorbell per home server and complete
        out of order — a closed-loop worker batching its read runs this way
        pays roughly one round trip for the whole batch.
        """
        gaddrs = [self.gaddr_of(k) for k in key_ids]
        results = yield from client.gread_many(gaddrs)
        return results

    def put(self, client, key_id: int, value: bytes) -> Generator[Any, Any, None]:
        """Full-value update."""
        if len(value) != self.value_size:
            raise KvError(
                f"value of {len(value)} bytes; store is fixed at {self.value_size}"
            )
        gaddr = self.gaddr_of(key_id)
        yield from client.gwrite(gaddr, value)

    def scan(self, client, start_key: int, count: int) -> Generator[Any, Any, List[bytes]]:
        """Read up to ``count`` records in key order starting at start_key.

        The whole range goes out as one doorbell-batched ``gread_many`` —
        and since consecutively loaded records tend to be NVM-adjacent, a
        scan is exactly the shape server-side read combining collapses into
        a single device transfer.
        """
        idx = bisect.bisect_left(self._sorted_keys, start_key)
        keys = self._sorted_keys[idx : idx + count]
        if not keys:
            return []
        results = yield from client.gread_many([self._index[k] for k in keys])
        return results

    def read_modify_write(self, client, key_id: int,
                          modify) -> Generator[Any, Any, bytes]:
        """Locked read-modify-write (YCSB F), atomic across clients."""
        gaddr = self.gaddr_of(key_id)
        yield from client.glock(gaddr, write=True)
        try:
            old = yield from client.gread(gaddr)
            new = modify(old)
            if len(new) != self.value_size:
                raise KvError("modify function changed the value size")
            yield from client.gwrite(gaddr, new)
        finally:
            yield from client.gunlock(gaddr, write=True)
        return old

    def delete(self, client, key_id: int) -> Generator[Any, Any, None]:
        """Remove a record and free its object."""
        gaddr = self.gaddr_of(key_id)
        del self._index[key_id]
        idx = bisect.bisect_left(self._sorted_keys, key_id)
        del self._sorted_keys[idx]
        yield from client.gfree(gaddr)
