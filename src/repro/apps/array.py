"""A distributed fixed-record array over the pool.

The numerical-workload companion to the KV store: ``n`` records of
``record_size`` bytes, packed into block objects spread round-robin across
the pool's servers.  Single-record access touches one block; bulk ranges are
fetched block-at-a-time (amortizing round trips), which is the access
pattern of analytics scans and checkpoint/restore.

Records are raw bytes; :class:`U64Array` adds an integer view with bulk
reductions on top.
"""

from __future__ import annotations

import struct
from typing import Any, Generator, List, Optional, Tuple


class ArrayError(Exception):
    """Bad geometry or out-of-range access."""


class DistributedArray:
    """``n`` fixed-size records in pool-resident blocks."""

    def __init__(self, length: int, record_size: int, records_per_block: int,
                 block_gaddrs: List[int]):
        self.length = length
        self.record_size = record_size
        self.records_per_block = records_per_block
        self.block_gaddrs = block_gaddrs

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, client, length: int, record_size: int,
               records_per_block: int = 256) -> Generator[Any, Any, "DistributedArray"]:
        """Allocate the blocks (zero-filled, thanks to calloc semantics)."""
        if length < 1 or record_size < 1 or records_per_block < 1:
            raise ArrayError("length, record size, and block factor must be positive")
        num_blocks = (length + records_per_block - 1) // records_per_block
        blocks: List[int] = []
        for b in range(num_blocks):
            in_block = min(records_per_block, length - b * records_per_block)
            gaddr = yield from client.gmalloc(in_block * record_size)
            blocks.append(gaddr)
        return cls(length, record_size, records_per_block, blocks)

    def _locate(self, index: int) -> Tuple[int, int]:
        if not 0 <= index < self.length:
            raise ArrayError(f"index {index} out of range [0, {self.length})")
        block, slot = divmod(index, self.records_per_block)
        return self.block_gaddrs[block], slot * self.record_size

    # ------------------------------------------------------------------
    def get(self, client, index: int) -> Generator[Any, Any, bytes]:
        """Read one record."""
        gaddr, offset = self._locate(index)
        data = yield from client.gread(gaddr, offset=offset,
                                       length=self.record_size)
        return data

    def set(self, client, index: int, record: bytes) -> Generator[Any, Any, None]:
        """Write one record."""
        if len(record) != self.record_size:
            raise ArrayError(
                f"record of {len(record)} bytes; array is fixed at "
                f"{self.record_size}"
            )
        gaddr, offset = self._locate(index)
        yield from client.gwrite(gaddr, record, offset=offset)

    def read_range(self, client, start: int, count: int) -> Generator[Any, Any, List[bytes]]:
        """Bulk-read ``count`` records from ``start``, block at a time."""
        if count < 0 or start < 0 or start + count > self.length:
            raise ArrayError(f"range [{start}, {start + count}) out of bounds")
        records: List[bytes] = []
        index = start
        remaining = count
        while remaining > 0:
            block, slot = divmod(index, self.records_per_block)
            in_block = min(remaining, self.records_per_block - slot)
            raw = yield from client.gread(
                self.block_gaddrs[block],
                offset=slot * self.record_size,
                length=in_block * self.record_size,
            )
            for i in range(in_block):
                records.append(raw[i * self.record_size:(i + 1) * self.record_size])
            index += in_block
            remaining -= in_block
        return records

    def write_range(self, client, start: int,
                    records: List[bytes]) -> Generator[Any, Any, None]:
        """Bulk-write contiguous records from ``start``, block at a time."""
        if start < 0 or start + len(records) > self.length:
            raise ArrayError(f"range [{start}, {start + len(records)}) out of bounds")
        for record in records:
            if len(record) != self.record_size:
                raise ArrayError("record size mismatch in bulk write")
        index = start
        pos = 0
        while pos < len(records):
            block, slot = divmod(index, self.records_per_block)
            in_block = min(len(records) - pos, self.records_per_block - slot)
            payload = b"".join(records[pos : pos + in_block])
            yield from client.gwrite(
                self.block_gaddrs[block], payload, offset=slot * self.record_size
            )
            index += in_block
            pos += in_block

    def destroy(self, client) -> Generator[Any, Any, None]:
        """Free every block."""
        for gaddr in self.block_gaddrs:
            yield from client.gfree(gaddr)
        self.block_gaddrs = []
        self.length = 0


class U64Array:
    """An integer view over a :class:`DistributedArray` of u64 records."""

    RECORD = struct.Struct("<Q")

    def __init__(self, array: DistributedArray):
        if array.record_size != 8:
            raise ArrayError("U64Array needs 8-byte records")
        self.array = array

    @classmethod
    def create(cls, client, length: int,
               records_per_block: int = 512) -> Generator[Any, Any, "U64Array"]:
        array = yield from DistributedArray.create(
            client, length, record_size=8, records_per_block=records_per_block)
        return cls(array)

    @property
    def length(self) -> int:
        return self.array.length

    def get(self, client, index: int) -> Generator[Any, Any, int]:
        raw = yield from self.array.get(client, index)
        return self.RECORD.unpack(raw)[0]

    def set(self, client, index: int, value: int) -> Generator[Any, Any, None]:
        yield from self.array.set(client, index, self.RECORD.pack(value % (1 << 64)))

    def fill(self, client, values: List[int],
             start: int = 0) -> Generator[Any, Any, None]:
        yield from self.array.write_range(
            client, start, [self.RECORD.pack(v % (1 << 64)) for v in values])

    def sum_range(self, client, start: int = 0,
                  count: Optional[int] = None) -> Generator[Any, Any, int]:
        """Bulk reduction: sum of a record range (block-at-a-time reads)."""
        if count is None:
            count = self.length - start
        records = yield from self.array.read_range(client, start, count)
        return sum(self.RECORD.unpack(r)[0] for r in records)
