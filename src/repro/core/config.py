"""Tunables for the Gengar pool.

The two headline mechanisms (hot-data DRAM caching and proxy-staged writes)
are independently switchable, which is how the paper's ablations and the
NVM-direct baseline are expressed:

* full Gengar: ``enable_cache=True, enable_proxy=True``
* cache-only ablation: ``enable_proxy=False``
* proxy-only ablation: ``enable_cache=False``
* NVM-direct baseline (Octopus-class DSHM): both off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import KIB, MIB


@dataclass(frozen=True)
class GengarConfig:
    """Configuration of one Gengar deployment."""

    # ---- headline mechanisms -------------------------------------------
    #: Cache hot objects in the home server's DRAM buffer.
    enable_cache: bool = True
    #: Stage writes in a server DRAM ring and drain to NVM asynchronously.
    enable_proxy: bool = True

    # ---- DRAM cache ------------------------------------------------------
    #: DRAM bytes per server dedicated to the hot-object cache.
    cache_capacity: int = 4 * MIB
    #: Bytes prepended to each cache slot for the self-verifying tag.
    cache_tag_bytes: int = 16

    # ---- write proxy -----------------------------------------------------
    #: Ring slots per attached client.
    proxy_ring_slots: int = 32
    #: Payload capacity of one ring slot (larger writes bypass the proxy).
    proxy_slot_size: int = 4 * KIB

    # ---- hotness tracking -------------------------------------------------
    #: Client reports its access counts to the master every this many ops.
    report_every_ops: int = 128
    #: Master re-plans promotions/demotions every epoch (simulated ns).
    epoch_ns: int = 200_000
    #: Exponential decay applied to scores at each epoch boundary.
    hotness_decay: float = 0.5
    #: Minimum decayed score for promotion into DRAM.
    promote_threshold: float = 4.0
    #: Cached objects falling below this score are demoted (hysteresis).
    demote_threshold: float = 1.0

    # ---- placement ---------------------------------------------------------
    #: Store primary data in DRAM instead of NVM (the DRAM-only upper bound).
    data_in_dram: bool = False
    #: Home-server selection for new objects: "round-robin" spreads evenly;
    #: "rack-local" prefers servers in the allocating client's rack (falling
    #: back to round robin when none fit) — pairs with two-tier fabrics.
    placement: str = "round-robin" 

    # ---- consistency --------------------------------------------------------
    #: Sync outstanding proxy writes before releasing a write lock (release
    #: consistency).  Turning this off trades the next lock holder's
    #: freshness guarantee for faster unlocks — quantified in extension
    #: experiment X3.
    sync_on_release: bool = True
    #: Lock words per server (one per live object at most).
    lock_table_entries: int = 65536
    #: Client backoff between lock retries.
    lock_retry_ns: int = 2_000

    # ---- metadata durability ---------------------------------------------
    #: Journal every allocation/free into a reserved NVM region on the home
    #: server, so the master's directory can be rebuilt after a full restart
    #: (at the price of one extra RPC + NVM write per gmalloc/gfree).
    metadata_journal: bool = False
    #: Capacity of the journal, in records (32 B each).
    journal_entries: int = 65536

    # ---- client ---------------------------------------------------------------
    #: Client-side metadata cache (gaddr -> location); disable to force a
    #: lookup RPC per access (for overhead experiments).
    metadata_cache: bool = True

    def __post_init__(self) -> None:
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.proxy_ring_slots < 1:
            raise ValueError("need at least one proxy ring slot")
        if self.proxy_slot_size < 64:
            raise ValueError("proxy slots must hold at least a header + small payload")
        if not 0.0 <= self.hotness_decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if self.demote_threshold > self.promote_threshold:
            raise ValueError("demote threshold must not exceed promote threshold")
        if self.report_every_ops < 1 or self.epoch_ns < 1:
            raise ValueError("reporting cadence must be positive")
        if self.journal_entries < 1:
            raise ValueError("journal needs at least one entry")
        if self.placement not in ("round-robin", "rack-local"):
            raise ValueError(f"unknown placement policy {self.placement!r}")

    # Convenience ablation constructors -----------------------------------
    def ablate(self, *, cache: bool | None = None, proxy: bool | None = None) -> "GengarConfig":
        """A copy with mechanisms toggled (None keeps the current value)."""
        return replace(
            self,
            enable_cache=self.enable_cache if cache is None else cache,
            enable_proxy=self.enable_proxy if proxy is None else proxy,
        )


#: The paper's system.
FULL = GengarConfig()
#: Ablations and the NVM-direct comparator, used across benchmarks.
CACHE_ONLY = GengarConfig(enable_proxy=False)
PROXY_ONLY = GengarConfig(enable_cache=False)
NVM_DIRECT = GengarConfig(enable_cache=False, enable_proxy=False)
DRAM_ONLY = GengarConfig(enable_cache=False, enable_proxy=False, data_in_dram=True)
