"""Tunables for the Gengar pool.

The two headline mechanisms (hot-data DRAM caching and proxy-staged writes)
are independently switchable, which is how the paper's ablations and the
NVM-direct baseline are expressed:

* full Gengar: ``enable_cache=True, enable_proxy=True``
* cache-only ablation: ``enable_proxy=False``
* proxy-only ablation: ``enable_cache=False``
* NVM-direct baseline (Octopus-class DSHM): both off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.rdma.rpc import DEFAULT_RING_SLOTS
from repro.sim.units import KIB, MIB


@dataclass(frozen=True)
class GengarConfig:
    """Configuration of one Gengar deployment."""

    # ---- headline mechanisms -------------------------------------------
    #: Cache hot objects in the home server's DRAM buffer.
    enable_cache: bool = True
    #: Stage writes in a server DRAM ring and drain to NVM asynchronously.
    enable_proxy: bool = True

    # ---- DRAM cache ------------------------------------------------------
    #: DRAM bytes per server dedicated to the hot-object cache.
    cache_capacity: int = 4 * MIB
    #: Bytes prepended to each cache slot for the self-verifying tag.
    cache_tag_bytes: int = 16

    # ---- write proxy -----------------------------------------------------
    #: Ring slots per attached client.
    proxy_ring_slots: int = 32
    #: Payload capacity of one ring slot (larger writes bypass the proxy).
    proxy_slot_size: int = 4 * KIB

    # ---- hotness tracking -------------------------------------------------
    #: Client reports its access counts to the master every this many ops.
    report_every_ops: int = 128
    #: Master re-plans promotions/demotions every epoch (simulated ns).
    epoch_ns: int = 200_000
    #: Exponential decay applied to scores at each epoch boundary.
    hotness_decay: float = 0.5
    #: Minimum decayed score for promotion into DRAM.
    promote_threshold: float = 4.0
    #: Cached objects falling below this score are demoted (hysteresis).
    demote_threshold: float = 1.0

    # ---- placement ---------------------------------------------------------
    #: Store primary data in DRAM instead of NVM (the DRAM-only upper bound).
    data_in_dram: bool = False
    #: Home-server selection for new objects: "round-robin" spreads evenly;
    #: "rack-local" prefers servers in the allocating client's rack (falling
    #: back to round robin when none fit) — pairs with two-tier fabrics.
    placement: str = "round-robin" 

    # ---- consistency --------------------------------------------------------
    #: Sync outstanding proxy writes before releasing a write lock (release
    #: consistency).  Turning this off trades the next lock holder's
    #: freshness guarantee for faster unlocks — quantified in extension
    #: experiment X3.
    sync_on_release: bool = True
    #: Lock words per server (one per live object at most).
    lock_table_entries: int = 65536
    #: Client backoff between lock retries.
    lock_retry_ns: int = 2_000

    # ---- metadata durability ---------------------------------------------
    #: Journal every allocation/free into a reserved NVM region on the home
    #: server, so the master's directory can be rebuilt after a full restart
    #: (at the price of one extra RPC + NVM write per gmalloc/gfree).
    metadata_journal: bool = False
    #: Capacity of the journal, in records (32 B each).
    journal_entries: int = 65536

    # ---- client ---------------------------------------------------------------
    #: Client-side metadata cache (gaddr -> location); disable to force a
    #: lookup RPC per access (for overhead experiments).
    metadata_cache: bool = True

    # ---- read pipelining + prefetch ---------------------------------------
    #: Window of concurrently outstanding async ops per client
    #: (``gread_async``/``gwrite_async`` block for a window slot past this).
    max_outstanding_reads: int = 16
    #: Max objects per client-driven prefetch request to the master; 0
    #: disables prefetch entirely (no predictor, no background promotions).
    prefetch_depth: int = 8
    #: Reads of an uncached object before the client nominates it for
    #: promotion (the admission filter: one-touch objects are never cached
    #: on the client's initiative).
    admission_threshold: int = 2

    # ---- resilience ------------------------------------------------------
    #: Modelled RC retransmission budget: how long a verb retransmits into
    #: silence before completing with RETRY_EXCEEDED (dead-peer detection).
    retry_timeout_ns: int = 50_000
    #: Attempts per client op before a RetryableError propagates.  The
    #: default of 1 keeps today's fail-fast behaviour (and virtual-time
    #: results) exactly; resilient deployments raise it.
    retry_max_attempts: int = 1
    #: First retry backoff; doubles per attempt up to the cap below.
    retry_base_backoff_ns: int = 4_000
    retry_max_backoff_ns: int = 1_000_000
    #: Randomize each backoff in [base, current] with the client's seeded
    #: jitter stream, breaking retry convoys deterministically.
    retry_jitter: bool = True
    #: Per-op wall (virtual) time budget; 0 disables the deadline watchdog.
    #: With a deadline, an op either completes in time or raises a typed
    #: DeadlineExceededError — it never blocks unboundedly.
    op_deadline_ns: int = 0
    #: Re-establish rings/epochs automatically when a retry loop sees a
    #: server-unavailable or stale-ring failure.
    auto_reattach: bool = False
    #: Serve ops through fallback paths instead of blocking or failing when
    #: server DRAM state is unavailable: writes fall back to direct NVM
    #: (ring gone or stalled), reads bypass a thrashing cache.
    degraded_mode: bool = False
    #: Drained-counter polls without progress before a ring is presumed
    #: stalled and a write falls back to the direct path (degraded mode).
    degraded_patience_polls: int = 8
    #: Client lease duration (failure detection, FaRM-style).  0 disables
    #: leases entirely — no heartbeats, no lease sweeper, lock words carry
    #: epoch 0 — keeping the fault-free path bit-identical to the pre-lease
    #: build.  When set, clients renew at lease/3 (piggybacked on reports
    #: or a standalone ``renew``) and the master recovers the locks, pins,
    #: and proxy rings of any client whose lease lapses, fencing its epoch.
    client_lease_ns: int = 0
    #: Master lease-sweep period; 0 derives ``client_lease_ns // 4``.
    lease_check_ns: int = 0
    #: Trailing per-slot commit word (seq ^ crc32) on proxy writes, letting
    #: the drain loop detect and skip torn slots from a client that died
    #: mid-RDMA_WRITE.  Costs 8 bytes of slot capacity per write.
    proxy_commit: bool = False
    #: Control-plane split-brain prevention: the master holds a monotonic
    #: *term* (generation) journaled alongside allocations; every control
    #: reply carries it, clients reject stale-term replies, servers reject
    #: stale-term journal appends, and a recovering master must first claim
    #: a higher term than any journaled one.  Requires ``metadata_journal``
    #: (the term lives there).  Off: the control protocol is byte-identical
    #: to the term-free build.
    master_terms: bool = False
    #: Phi-accrual-style failure detection over heartbeat history instead
    #: of the raw lease deadline: a lapsed lease is first only *suspected*
    #: (renewals were flowing irregularly — a flapping or partitioned link)
    #: and fenced when the suspicion level crosses ``phi_threshold``.
    #: Off: a lapsed deadline fences immediately (the PR 3 behaviour).
    failure_detector: bool = False
    #: Suspicion level (phi, base-10) at which a suspected client is
    #: declared dead and fenced.  phi == k means "assuming heartbeats keep
    #: their observed cadence, the chance they're merely late is 10^-k".
    phi_threshold: float = 8.0
    #: Heartbeat inter-arrival samples per client kept for the estimator.
    phi_window: int = 16

    # ---- transactions -----------------------------------------------------
    #: Multi-object crash-atomic transactions (``repro.txn``): lock-ordered
    #: 2PL with wait-die, a durable per-transaction intent record in server
    #: NVM as the single commit point, and master-side roll-forward/back on
    #: client death.  Off: no intent region is carved, no stamp table is
    #: registered, and the protocol + virtual time stay byte-identical to
    #: the txn-free build.
    enable_txn: bool = False
    #: Intent-record slots per server (one per in-flight committing txn
    #: whose coordinator is that server).
    txn_intent_entries: int = 64
    #: Bytes per intent slot; a txn whose pickled intent record exceeds
    #: this aborts cleanly at commit rather than truncating.
    txn_intent_slot_bytes: int = 4096
    #: Bound on how long a lock acquire spins on a *held* word before
    #: raising a typed ``LockTimeoutError`` (backoff between attempts rides
    #: ``RetryPolicy``'s seeded jitter).  0 keeps the legacy spin-until-
    #: op-deadline behaviour byte-identical.
    lock_acquire_timeout_ns: int = 0

    # ---- RPC data plane ---------------------------------------------------
    #: Control-RPC ring depth.  ``"auto"`` (the default) makes the server
    #: side elastic: receive/response rings start at
    #: :data:`~repro.rdma.rpc.DEFAULT_RING_SLOTS` slots and form an
    #: SRQ-style shared pool that grows in powers of two with the
    #: attached-QP count (and under response-occupancy pressure), then
    #: shrinks after idle epochs — this removes the historical ≥16-client
    #: slot-exhaustion wedge by construction.  An integer pins every ring
    #: to that fixed depth with no growth (``16`` reproduces the legacy
    #: data plane exactly, event for event).  Node-local: never shipped in
    #: the attach reply (see ``_WIRE_LOCAL``).
    rpc_ring_slots: int | str = "auto"
    #: Credit-based flow control on control RPCs: servers piggyback a
    #: receive-credit grant on each reply's immediate data (zero wire
    #: bytes) and clients park new calls at zero credits instead of
    #: overrunning the server pool.  Off: replies carry no immediate data
    #: and clients are bounded only by their own ring, as before.
    rpc_credits: bool = True

    # ---- control-plane sharding ------------------------------------------
    #: Master shards.  Object metadata is partitioned by home server
    #: (``shard_of(gaddr) = server_of(gaddr) % num_master_shards``); each
    #: shard owns the directory entries, allocator spans, journals, term,
    #: lease sweep, txn-intent recovery scan, and epoch/hotness planner for
    #: its server subset, and a cross-shard aggregation step keeps the DRAM
    #: cache budget globally coherent.  1 (the default) builds exactly the
    #: single-master control plane: no shard map in the attach reply, no
    #: aggregation loop, protocol bytes and virtual time identical.
    num_master_shards: int = 1
    #: Cross-shard hotness aggregation period; 0 derives ``epoch_ns``.
    #: Only meaningful with more than one shard.
    shard_aggregation_ns: int = 0

    def __post_init__(self) -> None:
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.proxy_ring_slots < 1:
            raise ValueError("need at least one proxy ring slot")
        if self.proxy_slot_size < 64:
            raise ValueError("proxy slots must hold at least a header + small payload")
        if not 0.0 <= self.hotness_decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if self.demote_threshold > self.promote_threshold:
            raise ValueError("demote threshold must not exceed promote threshold")
        if self.report_every_ops < 1 or self.epoch_ns < 1:
            raise ValueError("reporting cadence must be positive")
        if self.journal_entries < 1:
            raise ValueError("journal needs at least one entry")
        if self.placement not in ("round-robin", "rack-local"):
            raise ValueError(f"unknown placement policy {self.placement!r}")
        if self.retry_timeout_ns < 1:
            raise ValueError("retry_timeout_ns must be positive")
        if self.retry_max_attempts < 1:
            raise ValueError("need at least one attempt per op")
        if self.retry_base_backoff_ns < 1 or self.retry_max_backoff_ns < self.retry_base_backoff_ns:
            raise ValueError("retry backoff range must satisfy 1 <= base <= max")
        if self.op_deadline_ns < 0:
            raise ValueError("op_deadline_ns must be non-negative (0 disables)")
        if self.degraded_patience_polls < 1:
            raise ValueError("degraded_patience_polls must be positive")
        if self.client_lease_ns < 0 or self.lease_check_ns < 0:
            raise ValueError("lease intervals must be non-negative (0 disables)")
        if self.max_outstanding_reads < 1:
            raise ValueError("max_outstanding_reads must be at least 1")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative (0 disables)")
        if self.admission_threshold < 1:
            raise ValueError("admission_threshold must be at least 1")
        if self.master_terms and not self.metadata_journal:
            raise ValueError("master_terms requires metadata_journal "
                             "(terms are persisted in the journal)")
        if self.phi_threshold <= 0:
            raise ValueError("phi_threshold must be positive")
        if self.phi_window < 2:
            raise ValueError("phi_window needs at least two samples")
        if self.failure_detector and not self.client_lease_ns:
            raise ValueError("failure_detector requires client_lease_ns "
                             "(it observes lease heartbeats)")
        if self.txn_intent_entries < 1:
            raise ValueError("txn_intent_entries must be at least 1")
        if self.txn_intent_slot_bytes < 128:
            raise ValueError("txn intent slots must hold at least a small "
                             "record (128 bytes)")
        if self.lock_acquire_timeout_ns < 0:
            raise ValueError("lock_acquire_timeout_ns must be non-negative "
                             "(0 disables)")
        if self.rpc_ring_slots != "auto" and (
                not isinstance(self.rpc_ring_slots, int)
                or isinstance(self.rpc_ring_slots, bool)
                or self.rpc_ring_slots < 2):
            raise ValueError('rpc_ring_slots must be "auto" or an int >= 2')
        if self.num_master_shards < 1:
            raise ValueError("num_master_shards must be at least 1")
        if self.shard_aggregation_ns < 0:
            raise ValueError("shard_aggregation_ns must be non-negative "
                             "(0 derives epoch_ns)")

    # Wire compatibility ---------------------------------------------------
    # The attach reply ships this object whole, so its pickled size is
    # protocol bytes: a field added after a capture was taken would inflate
    # every attach even with the feature off, drifting virtual time.  Fields
    # listed here are dropped from the pickled state while at their default
    # and restored on load, keeping the wire image byte-identical to builds
    # that predate them unless the feature is actually enabled.
    _WIRE_OPTIONAL = {
        "master_terms": False,
        "failure_detector": False,
        "phi_threshold": 8.0,
        "phi_window": 16,
        "enable_txn": False,
        "txn_intent_entries": 64,
        "txn_intent_slot_bytes": 4096,
        "lock_acquire_timeout_ns": 0,
        "num_master_shards": 1,
        "shard_aggregation_ns": 0,
    }

    # Fields that configure purely node-local wiring (ring sizing, credit
    # windows), decided at build time and never consulted by the receiver
    # of an attach reply: ALWAYS stripped from the pickled wire image, so
    # the control protocol's bytes are independent of their value.
    _WIRE_LOCAL = ("rpc_ring_slots", "rpc_credits")

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name, default in self._WIRE_OPTIONAL.items():
            if state.get(name) == default:
                del state[name]
        for name in self._WIRE_LOCAL:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, default in self._WIRE_OPTIONAL.items():
            state.setdefault(name, default)
        for name in self._WIRE_LOCAL:
            state.setdefault(name, getattr(type(self), name))
        self.__dict__.update(state)

    # RPC sizing helpers ---------------------------------------------------
    @property
    def rpc_elastic(self) -> bool:
        """True when the server-side RPC rings grow/shrink with load."""
        return self.rpc_ring_slots == "auto"

    @property
    def rpc_initial_ring_slots(self) -> int:
        """Ring depth every RPC endpoint starts from (single source of
        truth for servers and clients — they can never disagree)."""
        return DEFAULT_RING_SLOTS if self.rpc_ring_slots == "auto" \
            else self.rpc_ring_slots

    # Convenience ablation constructors -----------------------------------
    def ablate(self, *, cache: bool | None = None, proxy: bool | None = None) -> "GengarConfig":
        """A copy with mechanisms toggled (None keeps the current value)."""
        return replace(
            self,
            enable_cache=self.enable_cache if cache is None else cache,
            enable_proxy=self.enable_proxy if proxy is None else proxy,
        )


#: The paper's system.
FULL = GengarConfig()
#: Ablations and the NVM-direct comparator, used across benchmarks.
CACHE_ONLY = GengarConfig(enable_proxy=False)
PROXY_ONLY = GengarConfig(enable_cache=False)
NVM_DIRECT = GengarConfig(enable_cache=False, enable_proxy=False)
DRAM_ONLY = GengarConfig(enable_cache=False, enable_proxy=False, data_in_dram=True)
