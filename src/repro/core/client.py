"""The Gengar client library.

All application access to the pool goes through this class, which is exactly
what lets Gengar harvest access semantics for free: every ``gread``/``gwrite``
the library posts is also an access record, batched and piggybacked to the
master (see :mod:`repro.core.hotness`).

Data-plane routing per operation:

* **read, object cached** → one RDMA READ of the home server's DRAM cache
  slot (self-verifying tag; a mismatch means stale metadata, triggering a
  lookup and retry),
* **read, uncached** → one RDMA READ of the NVM home,
* **write, proxy on** → one RDMA WRITE_WITH_IMM into the client's private
  ring in server DRAM; completion at DRAM latency, NVM updated by the
  server's drain loop off the critical path,
* **write, proxy off** → RDMA WRITE to NVM (plus a verified cache update
  when a DRAM copy exists).

Reads of objects with still-undrained proxy writes are served from the
client's local overlay, so every client observes its own writes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rdma.qp import QueuePair
    from repro.rdma.rpc import RpcClient

from repro.core.addressing import server_of
from repro.core.config import GengarConfig
from repro.core.consistency import LockOps
from repro.core.errors import (
    BatchError,
    ClientError,
    DeadlineExceededError,
    FatalError,
    FencedError,
    LeaseExpiredError,
    LockTimeoutError,
    MasterUnavailableError,
    NotMyShard,
    PartitionSuspected,
    RetryableError,
    RingSaturatedError,
    ServerUnavailableError,
    StaleRingError,
    StaleTermError,
    TxnAbortedError,
    TxnError,
    TxnWaitDieError,
)
from repro.core.hotness import AccessPredictor
from repro.core.layout import DramCarver
from repro.core.protocol import (
    CACHE_TAG_BYTES,
    PROXY_COMMIT_BYTES,
    ObjectMeta,
    RingDescriptor,
    ServerDescriptor,
    pack_proxy_commit,
    pack_proxy_slot,
    proxy_payload_capacity,
    tag_matches,
)
from repro.core.server import ReadCombineGroup
from repro.rdma.cq import CompletionMux
from repro.rdma.mr import AccessFlags
from repro.rdma.rpc import RpcError
from repro.rdma.wr import Opcode, WcStatus, WorkRequest
from repro.sim.resources import Store
from repro.sim.trace import trace

__all__ = [
    "GengarClient",
    "GFuture",
    "RetryPolicy",
    "ClientError",
    "BatchError",
    "FatalError",
    "RetryableError",
    "ServerUnavailableError",
    "MasterUnavailableError",
    "RingSaturatedError",
    "StaleRingError",
    "FencedError",
    "DeadlineExceededError",
    "LockTimeoutError",
    "TxnError",
    "TxnAbortedError",
    "TxnWaitDieError",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client reacts to retryable failures.

    The default (one attempt, no deadline) is exactly the historical
    fail-fast behaviour; the resilient profile comes from
    :meth:`from_config` when the config raises ``retry_max_attempts``.
    """

    #: Attempts per op before the RetryableError propagates.
    max_attempts: int = 1
    #: First backoff; doubles per attempt, capped at ``max_backoff_ns``.
    base_backoff_ns: int = 4_000
    max_backoff_ns: int = 1_000_000
    #: Randomize each backoff in [base, current] (seeded stream).
    jitter: bool = True
    #: Per-op virtual-time budget; 0 disables the deadline watchdog.
    deadline_ns: int = 0

    @classmethod
    def from_config(cls, config: GengarConfig) -> "RetryPolicy":
        return cls(
            max_attempts=config.retry_max_attempts,
            base_backoff_ns=config.retry_base_backoff_ns,
            max_backoff_ns=config.retry_max_backoff_ns,
            jitter=config.retry_jitter,
            deadline_ns=config.op_deadline_ns,
        )

    def backoff_ns(self, attempt: int, rng) -> int:
        """Delay before retry number ``attempt`` (1-based)."""
        delay = min(self.base_backoff_ns << min(attempt - 1, 20),
                    self.max_backoff_ns)
        if self.jitter and delay > self.base_backoff_ns:
            return rng.randrange(self.base_backoff_ns, delay + 1)
        return delay


@dataclass
class _PendingWrite:
    """Read-your-writes overlay entry for one object."""

    offset: int
    data: bytes
    server_id: int
    seq: int  # the ring sequence number of the staging write


@dataclass
class _ServerConn:
    """Client-side state for one memory server."""

    desc: ServerDescriptor
    data_qp: "QueuePair"
    rpc: "RpcClient"
    ring: Optional[RingDescriptor] = None
    written: int = 0  # proxy writes issued
    drained_known: int = 0  # last drained-counter value observed


#: Scratch bounce buffers for RDMA payloads.
_SCRATCH_SLOTS = 16
_SCRATCH_SLOT_SIZE = 256 * 1024
#: Retries after self-verification failures before declaring thrash.
_MAX_META_RETRIES = 4
#: Consecutive master transport failures before the client's verdict
#: upgrades from "one lost RPC" to "the path to the master is partitioned".
_SUSPECT_STREAK = 3

#: What a shard's "not my shard" rejection looks like on the wire; the
#: client parses the owning shard and map epoch out of it to correct its
#: cached shard map before retrying at the right shard.
_NOT_MY_SHARD_RE = re.compile(
    r"not my shard: server (\d+) is owned by shard (\d+), "
    r"not shard (\d+) \(map epoch (\d+)\)")


class GFuture:
    """Handle on an asynchronous pool operation.

    Returned by :meth:`GengarClient.gread_async` / ``gwrite_async``.  The
    op runs as its own simulation process inside the client's outstanding-op
    window; the future is how the issuing process harvests the result:

    * ``yield from fut.wait()`` — block until done, return the op's value
      (re-raising its typed error, if any),
    * ``fut.done`` / ``fut.result()`` — non-blocking poll for pipelined
      loops that overlap issue with completion.
    """

    __slots__ = ("_proc",)

    def __init__(self, proc):
        self._proc = proc

    @property
    def done(self) -> bool:
        return self._proc.triggered

    def result(self):
        """The op's value (or its raised error).  Only valid once done."""
        if not self._proc.triggered:
            raise FatalError("GFuture.result() before completion; "
                             "use `yield from fut.wait()` to block")
        return self._proc.value

    def wait(self) -> Generator[Any, Any, Any]:
        """Process helper: block until the op completes."""
        yield self._proc
        return self._proc.value


class GengarClient:
    """One application's handle on the pool.

    All public operations are *process helpers*: call them with
    ``yield from`` inside a simulation process.
    """

    def __init__(self, node: "Node", name: str = ""):
        self.node = node
        self.sim = node.sim
        self.name = name or node.name
        self.config: GengarConfig = GengarConfig()  # replaced at attach
        self.master_rpc: Optional["RpcClient"] = None  # shard-0 active conn
        #: Per-shard master connections in rotation order (active +
        #: standbys); shard 0 is the only populated entry on an unsharded
        #: pool.
        self._shard_rpcs: Dict[int, list] = {}
        #: Per-shard active connection — what :meth:`_master_call` dials.
        self._shard_active: Dict[int, "RpcClient"] = {}
        #: Highest master term observed in any reply, tracked PER SHARD
        #: (``master_terms``): every shard runs its own term sequence, so
        #: a failover on one shard must not make another shard's perfectly
        #: healthy replies look stale.  Replies below a shard's floor are
        #: deposed-master echoes and are rejected.
        self._master_terms: Dict[int, int] = {}
        #: Consecutive master transport failures, per shard; at the
        #: suspicion streak the failure is reported as PartitionSuspected,
        #: not just one more MasterUnavailableError.
        self._master_fail_streaks: Dict[int, int] = {}
        #: Client-side shard map (home server id -> owning shard), learned
        #: at attach and corrected lazily by "not my shard" redirects that
        #: carry a map epoch at least as new as the one cached here.
        self._shard_map: Dict[int, int] = {}
        self._shard_map_epoch = 0
        self._num_shards = 1
        #: Round-robin cursor spreading gmallocs across shards.
        self._alloc_rr = 0
        #: req_id -> shard memo: every retry of one logical gmalloc must
        #: re-present its idempotency token to the SAME shard (or, after a
        #: redirect, to the shard that inherited the dedup entry).
        self._req_shards: Dict[int, int] = {}
        self._conns: Dict[int, _ServerConn] = {}
        self._meta_cache: Dict[int, ObjectMeta] = {}
        # Epoch-based invalidation: each entry remembers the per-server epoch
        # it was learned under; bumping a server's epoch (reattach) devalues
        # every entry for that server in O(1) instead of scanning the cache.
        self._meta_epoch: Dict[int, int] = {}
        self._srv_epoch: Dict[int, int] = {}
        self._overlay: Dict[int, _PendingWrite] = {}
        self._access_counts: Dict[int, list] = {}  # gaddr -> [reads, writes]
        self._ops_since_report = 0
        self._report_inflight = False
        self.locks = LockOps(self)
        #: Lazily constructed transaction engine (see the ``txn`` property);
        #: stays None — zero cost — unless transactions are actually used.
        self._txn_manager = None
        self._attached = False
        #: Unique id assigned by the master at attach; tags write locks so
        #: abandoned ones are attributable and recoverable.
        self.uid = 0
        #: Monotone per-client sequence for idempotency tokens: one req_id
        #: per *logical* gmalloc/gfree, reused verbatim across retries so
        #: the master can deduplicate an execute-then-crash replay.
        self._req_seq = 0
        #: Active retry policy (refreshed from the config at attach time).
        self.retry_policy = RetryPolicy()
        self._retry_rng = None  # seeded jitter stream, created on first use
        #: In-flight auto-reattach gates, one per server: concurrent failed
        #: ops coalesce onto a single re-attach handshake.
        self._reattach_gates: Dict[int, Any] = {}
        #: Coalescing gates for master re-attach, one per shard (same
        #: pattern as the per-server gates above).
        self._reattach_master_gates: Dict[int, Any] = {}
        # ---- lease / fencing state (all inert while lease_ns == 0) ------
        #: Lease duration granted by the master at attach; 0 = leases off.
        self.lease_ns = 0
        #: Virtual time at which the current lease lapses.
        self.lease_deadline = 0
        #: Fencing epoch carried in every lock word this client installs.
        self.fence_epoch = 0
        self._fenced = False
        self._crashed = False
        self._heartbeat_proc = None
        self._last_renew_ns = 0
        #: Last successfully staged proxy write (server_id, gaddr, offset,
        #: data) — what a torn-write fault injection would re-stage halfway.
        self._last_staged: Optional[tuple] = None
        #: One record per completed re-attach: {"time_ns", "server_id",
        #: "lost"} — the durability audit trail (each lost staged write is
        #: reported in exactly one record).
        self.fault_log: list = []

        # Local scratch buffers for DMA sources/destinations.
        self._carver = DramCarver(node.dram)
        self._scratch_base: Optional[int] = None
        self._scratch_mr = None
        self._scratch_free: Optional[Store] = None

        # ---- async op window (gread_async / gwrite_async) ----------------
        #: Token pool bounding concurrently outstanding async ops; created
        #: at attach from ``config.max_outstanding_reads``.
        self._op_tokens: Optional[Store] = None
        self._async_inflight = 0
        #: High-water mark of concurrently outstanding async ops — what the
        #: window tests and the perf harness report as pipelining pressure.
        self._async_peak = 0

        # ---- prefetch (hotness-driven background promotion) --------------
        #: Per-object read touches, feeding the admission filter: an object
        #: is nominated for promotion only at its
        #: ``admission_threshold``-th read (one-touch objects never are).
        self._touch_counts: Dict[int, int] = {}
        #: Addresses already nominated (squelches duplicate requests while
        #: a promotion is pending or the object is believed cached).
        self._prefetch_requested: set = set()
        self._prefetch_queue: list = []
        self._prefetch_inflight = False
        #: Stride/frequency predictor; None while prefetch is disabled.
        self._predictor: Optional[AccessPredictor] = None

        m = self.sim.metrics
        self.m_reads = m.counter("pool.reads")
        self.m_writes = m.counter("pool.writes")
        self.m_cache_hits = m.counter("pool.cache_hits")
        self.m_nvm_reads = m.counter("pool.nvm_reads")
        self.m_overlay_hits = m.counter("pool.overlay_hits")
        self.m_tag_misses = m.counter("pool.tag_misses")
        self.m_proxy_writes = m.counter("pool.proxy_writes")
        self.m_direct_writes = m.counter("pool.direct_writes")
        self.m_lookups = m.counter("pool.lookups")
        self.m_retries = m.counter("pool.retries")
        self.m_failovers = m.counter("pool.failovers")
        self.m_lost_writes = m.counter("pool.lost_staged_writes")
        self.m_degraded_reads = m.counter("pool.degraded_reads")
        self.m_degraded_writes = m.counter("pool.degraded_writes")
        self.m_deadline_misses = m.counter("pool.deadline_misses")
        self.m_lease_renewals = m.counter("pool.lease_renewals")
        self.m_fence_rejections = m.counter("pool.fence_rejections")
        self.m_master_failovers = m.counter("pool.master_failovers")
        self.m_lease_lapses = m.counter("pool.lease_lapses")
        self.m_stale_terms = m.counter("pool.stale_term_rejections")
        self.m_partition_suspected = m.counter("pool.partition_suspected")
        self.m_shard_redirects = m.counter("pool.shard_redirects")
        self.m_prefetches = m.counter("pool.prefetches")
        self.h_read = m.histogram("pool.read_latency")
        self.h_write = m.histogram("pool.write_latency")
        #: Per-doorbell batch sizes from gread_many — mean = effective
        #: read-pipelining depth, reported by the perf harness.
        self.h_read_batch = m.histogram("pool.read_batch")

    # ------------------------------------------------------------------
    @property
    def fenced(self) -> bool:
        """True once the master has fenced this client's epoch (its locks
        were recovered); every lock op raises FencedError until
        :meth:`reattach_master`."""
        return self._fenced

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _check_lease_fence(self, what: str) -> None:
        """Data-plane lease fencing (the FaRM rule, extended past locks):
        a client whose lease has lapsed — or that the master already
        fenced — must not land one-sided reads or writes either.  Its
        locks may have been recovered and handed to a new holder; letting
        a zombie's RDMA WRITE race the new owner's critical section would
        corrupt exactly the data the lock protects.  Inert with leases
        off (``lease_ns == 0``), so the fault-free path pays nothing.
        """
        if not self.lease_ns:
            return
        if self._fenced:
            self.m_fence_rejections.add()
            if self.sim.tracer is not None:
                trace(self.sim, "fence", f"{what} refused: epoch fenced",
                      client=self.name)
            raise FencedError(
                f"{what}: master fenced this epoch; "
                "reattach_master() to rejoin")
        if self.sim.now >= self.lease_deadline:
            # The deadline lapsed *locally* but the master never said
            # "fenced" — typically the master was unreachable longer than
            # one lease (its own retry backoff can outlast the lease).
            # That is a retryable condition, not a terminal one: the
            # resilience engine re-attaches (fresh lease, same epoch) and
            # retries, instead of a zombie-style self-fence.
            self.m_fence_rejections.add()
            self.m_lease_lapses.add()
            if self.sim.tracer is not None:
                trace(self.sim, "lease", f"{what} parked: lease lapsed "
                      "locally", client=self.name)
            raise LeaseExpiredError(
                f"{what}: lease deadline lapsed locally; re-attach to "
                "renew before retrying")

    # ------------------------------------------------------------------
    # Wiring + attach (called by the deployment bootstrap)
    # ------------------------------------------------------------------
    def carve_dram(self, nbytes: int, label: str) -> int:
        """Reserve client DRAM for connection buffers (bootstrap helper)."""
        return self._carver.carve(nbytes, label)

    def add_server_conn(self, desc: ServerDescriptor, data_qp: "QueuePair",
                        rpc: "RpcClient") -> None:
        self._conns[desc.server_id] = _ServerConn(desc=desc, data_qp=data_qp, rpc=rpc)

    def add_master_conn(self, rpc: "RpcClient", shard: int = 0) -> None:
        """Register a master control connection (active or standby) for one
        shard.  The first one registered for a shard becomes that shard's
        active master; the rest are the rotation order
        :meth:`_rotate_master` walks on failover."""
        rots = self._shard_rpcs.setdefault(shard, [])
        if rpc not in rots:
            rots.append(rpc)
        if shard not in self._shard_active:
            self._shard_active[shard] = rpc
        if shard == 0 and self.master_rpc is None:
            self.master_rpc = rpc

    def _rotate_master(self, shard: int = 0) -> None:
        """Point the shard's control plane at its next wired master (no-op
        without standbys).  Stale-term protection makes this safe to do
        eagerly: if the rotation lands on a deposed master, its replies
        carry a term below the one we have seen and are rejected, rotating
        us onward."""
        rots = self._shard_rpcs.get(shard, [])
        if len(rots) < 2:
            return
        try:
            i = rots.index(self._shard_active.get(shard))
        except ValueError:
            i = -1
        self._shard_active[shard] = rots[(i + 1) % len(rots)]
        if shard == 0:
            self.master_rpc = self._shard_active[0]
        if self.sim.tracer is not None:
            trace(self.sim, "failover", "rotated to next master",
                  client=self.name, shard=shard)

    def _learn_redirect(self, msg: str) -> tuple:
        """Parse a "not my shard" rejection and fold the ownership it
        reveals into the client-side shard map (newest map epoch wins).
        Returns ``(owner_shard, map_epoch)`` — both None/stale-safe."""
        m = _NOT_MY_SHARD_RE.search(msg)
        if m is None:
            return None, self._shard_map_epoch
        sid, owner, _asked, epoch = (int(g) for g in m.groups())
        if epoch >= self._shard_map_epoch:
            self._shard_map[sid] = owner
            self._shard_map_epoch = epoch
        return owner, epoch

    def _master_call(self, method: str, payload,
                     shard: int = 0) -> Generator[Any, Any, Any]:
        """Call one master shard, mapping transport failures and the
        recovering window into the retryable
        :class:`MasterUnavailableError` so the resilience engine (and its
        auto master re-attach) can handle them.

        With ``master_terms`` the reply rides a ``{"t": term, "r": result}``
        envelope: the term is compared against the highest this client has
        observed *from this shard*, and a reply below it is a deposed
        master's echo — rejected with :class:`StaleTermError` rather than
        trusted.  A streak of pure transport failures upgrades the verdict
        to :class:`PartitionSuspected`: not one lost RPC, a dead path.
        A shard that no longer owns the addressed server answers "not my
        shard"; that surfaces as :class:`NotMyShard` after correcting the
        cached shard map, so the retry dials the owner.

        Every raised error is tagged with the shard it came from
        (``exc.shard``) so the resilience engine re-attaches the right
        control-plane connection.
        """
        rpc = self._shard_active.get(shard) or self.master_rpc
        try:
            result = yield from rpc.call(method, payload)
        except RpcError as exc:
            msg = str(exc)
            if "not my shard" in msg:
                owner, epoch = self._learn_redirect(msg)
                self.m_shard_redirects.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "shard", f"{method} redirected",
                          client=self.name, shard=shard, owner=owner)
                raise NotMyShard(
                    f"{method}: {msg}", shard_id=shard, owner_shard=owner,
                    map_epoch=epoch) from exc
            if "master deposed" in msg or "stale master term" in msg:
                self.m_stale_terms.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "term", f"{method} hit a deposed master",
                          client=self.name, shard=shard)
                err = StaleTermError(
                    f"{method}: {msg}",
                    known_term=self._master_terms.get(shard, 0))
                err.shard = shard
                raise err from exc
            if "transport failed" in msg:
                streak = self._master_fail_streaks.get(shard, 0) + 1
                self._master_fail_streaks[shard] = streak
                if streak >= _SUSPECT_STREAK:
                    self.m_partition_suspected.add()
                    if self.sim.tracer is not None:
                        trace(self.sim, "partition",
                              "master path suspected partitioned",
                              client=self.name, shard=shard,
                              failures=streak)
                    err = PartitionSuspected(
                        f"{method}: {streak} consecutive "
                        f"master transport failures ({msg})")
                    err.shard = shard
                    raise err from exc
                err = MasterUnavailableError(f"{method}: {msg}")
                err.shard = shard
                raise err from exc
            if "master recovering" in msg:
                err = MasterUnavailableError(f"{method}: {msg}")
                err.shard = shard
                raise err from exc
            raise
        self._master_fail_streaks[shard] = 0
        if (isinstance(result, dict) and len(result) == 2
                and "t" in result and "r" in result):
            # Term envelope (checked structurally: attach learns the config
            # *from* this reply, so the flag may not be known yet).
            term = result["t"]
            known = self._master_terms.get(shard, 0)
            if term < known:
                self.m_stale_terms.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "term", f"{method} reply term stale",
                          client=self.name, shard=shard, reply_term=term,
                          known_term=known)
                err = StaleTermError(
                    f"{method}: reply term {term} below observed "
                    f"{known}", reply_term=term, known_term=known)
                err.shard = shard
                raise err
            self._master_terms[shard] = term
            result = result["r"]
        return result

    def _resolve_shard(self, gaddr: int) -> int:
        """Which shard owns ``gaddr``'s home server, per the client-side
        shard map (default: server id mod shard count, the bootstrap
        layout, until a redirect teaches us better)."""
        if self._num_shards <= 1:
            return 0
        sid = server_of(gaddr)
        return self._shard_map.get(sid, sid % self._num_shards)

    def attach(self) -> Generator[Any, Any, None]:
        """Join the pool: fetch config from the master, set up proxy rings."""
        if self.master_rpc is None:
            raise FatalError("client not wired to a master")
        info = yield from self._master_call("attach", {"client": self.name})
        self.config = info["config"]
        self.uid = info["client_id"]
        self.fence_epoch = info.get("epoch", 0)
        self.lease_ns = info.get("lease_ns", 0)
        self.retry_policy = RetryPolicy.from_config(self.config)
        servers = list(info["servers"])
        self._num_shards = max(1, self.config.num_master_shards)
        if self._num_shards > 1:
            # Phase the allocation round-robin by our (master-issued,
            # sequential) uid: with every client starting its cursor at 0,
            # the fleet sweeps the shards in lockstep — each instant all
            # allocs converge on ONE shard and the others idle, which is
            # single-master queueing with extra steps.
            self._alloc_rr = self.uid
            # Multi-shard attach: shard 0 minted our uid; present it to the
            # other shards so they adopt the same identity (and lease us).
            # Each shard's reply lists only the servers it owns — the union
            # is the pool, and which shard answered IS the shard map.
            for desc in info["servers"]:
                self._shard_map[desc.server_id] = 0
            for shard in range(1, self._num_shards):
                extra = yield from self._master_call(
                    "attach",
                    {"client": self.name, "uid": self.uid,
                     "epoch": self.fence_epoch},
                    shard=shard)
                self.fence_epoch = max(self.fence_epoch,
                                       extra.get("epoch", 0))
                for desc in extra["servers"]:
                    self._shard_map[desc.server_id] = shard
                servers.extend(extra["servers"])
        if self.lease_ns:
            self.lease_deadline = self.sim.now + self.lease_ns
            self._last_renew_ns = self.sim.now
            self._start_heartbeat()

        scratch_span = _SCRATCH_SLOTS * _SCRATCH_SLOT_SIZE
        self._scratch_base = self._carver.carve(scratch_span, "scratch")
        self._scratch_mr = self.node.endpoint.register_mr(
            self.node.dram, self._scratch_base, scratch_span,
            access=AccessFlags.ALL, name=f"{self.name}.scratch",
        )
        self._scratch_free = Store(self.sim, name=f"{self.name}.scratch_free")
        for i in range(_SCRATCH_SLOTS):
            self._scratch_free.put(i * _SCRATCH_SLOT_SIZE)

        self._op_tokens = Store(self.sim, name=f"{self.name}.op_window")
        for i in range(self.config.max_outstanding_reads):
            self._op_tokens.put(i)
        if (self.config.enable_cache and self.config.prefetch_depth > 0
                and self.config.metadata_cache):
            self._predictor = AccessPredictor(depth=self.config.prefetch_depth)

        for desc in servers:
            conn = self._conns.get(desc.server_id)
            if conn is None:
                raise FatalError(
                    f"master lists server {desc.server_id} but no QP was wired"
                )
            if self.config.enable_proxy:
                conn.ring = yield from conn.rpc.call(
                    "attach",
                    {"client": self.name, "qp_num": conn.data_qp.remote.qp_num},
                )
        self._attached = True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def gmalloc(self, size: int) -> Generator[Any, Any, int]:
        """Allocate an object in the pool; returns its global address.

        Fresh objects read as zeros (calloc semantics): freed extents are
        scrubbed server-side before reuse, so no allocation can observe a
        previous object's bytes.
        """
        self._require_attached()
        req_id = self._next_req_id()
        if self._num_shards > 1:
            # Spread allocations round-robin across shards; the memo pins
            # every retry of this req_id to one shard so its dedup entry
            # is consulted where it lives.
            self._req_shards[req_id] = self._alloc_rr % self._num_shards
            self._alloc_rr += 1
        try:
            meta = yield from self._resilient(
                "gmalloc", lambda: self._gmalloc_once(size, req_id))
        finally:
            self._req_shards.pop(req_id, None)
        return meta.gaddr

    def _next_req_id(self) -> int:
        """Mint an idempotency token: globally unique (uid is master-issued
        and survives re-attach), minted once per logical op, repeated
        verbatim on every retry of that op."""
        self._req_seq += 1
        return (self.uid << 32) | self._req_seq

    def _gmalloc_once(self, size: int, req_id: int = 0) -> Generator[Any, Any, ObjectMeta]:
        shard = self._req_shards.get(req_id, 0)
        try:
            meta = yield from self._master_call(
                "gmalloc", {"size": size, "client": self.name,
                            "req_id": req_id}, shard=shard)
        except NotMyShard as exc:
            # A reshard moved the allocation's home mid-retry: chase the
            # dedup entry to the owning shard so the retry observes the
            # original outcome instead of double-allocating.
            if exc.owner_shard is not None:
                self._req_shards[req_id] = exc.owner_shard
            raise
        if self.config.metadata_cache:
            self._store_meta(meta)
        return meta

    def gfree(self, gaddr: int) -> Generator[Any, Any, None]:
        """Free a pool object.  Outstanding writes are synced first."""
        self._require_attached()
        if gaddr in self._overlay:
            yield from self._gsync_traced(server_id=self._overlay[gaddr].server_id)
        req_id = self._next_req_id()
        yield from self._resilient(
            "gfree", lambda: self._master_call(
                "gfree", {"gaddr": gaddr, "req_id": req_id},
                shard=self._resolve_shard(gaddr)))
        self._invalidate_meta(gaddr)
        self._access_counts.pop(gaddr, None)
        self._touch_counts.pop(gaddr, None)
        self._prefetch_requested.discard(gaddr)

    def gread(self, gaddr: int, offset: int = 0,
              length: Optional[int] = None) -> Generator[Any, Any, bytes]:
        """Read ``length`` bytes of an object (defaults to the whole object).

        Applies the client's :class:`RetryPolicy`: retryable failures (dead
        server, torn-down ring) are retried with backoff up to
        ``max_attempts``, optionally re-attaching automatically; a deadline
        turns an unbounded stall into :class:`DeadlineExceededError`.
        """
        hist = self.sim.history
        if hist is not None:
            tok = hist.invoke(self.name, "read", gaddr,
                              offset=offset, length=length)
            try:
                data = yield from self._gread_traced(gaddr, offset, length)
            except BaseException as exc:
                # Reads have no effect: a failed read is a definite no-op.
                hist.fail(tok, exc)
                raise
            hist.ok(tok, value=hist.encode(data))
            return data
        data = yield from self._gread_traced(gaddr, offset, length)
        return data

    def _gread_traced(self, gaddr: int, offset: int = 0,
                      length: Optional[int] = None) -> Generator[Any, Any, bytes]:
        rec = self.sim.spans
        if rec is None:
            data = yield from self._resilient(
                "gread", lambda: self._gread_once(gaddr, offset, length))
            return data
        t0 = self.sim.now
        op = rec.next_op()
        try:
            data = yield from self._resilient(
                "gread", lambda: self._gread_once(gaddr, offset, length, op),
                span_op=op)
            return data
        finally:
            rec.record(self.name, "op.gread", t0, op=op, gaddr=hex(gaddr))

    def _gread_once(self, gaddr: int, offset: int = 0,
                    length: Optional[int] = None,
                    span_op: int = 0) -> Generator[Any, Any, bytes]:
        self._require_attached()
        self._check_lease_fence("gread")
        start = self.sim.now
        meta = self._cached_meta(gaddr)
        if meta is None:
            meta = yield from self._meta(gaddr, span_op=span_op)
        if length is None:
            length = meta.size - offset
        self._check_bounds(meta, offset, length)
        yield from self.node.cpu_work()
        self.m_reads.add()

        # Read-your-writes: serve from the overlay when it covers the range.
        pending = self._overlay.get(gaddr)
        if pending is not None:
            if (pending.offset <= offset
                    and offset + length <= pending.offset + len(pending.data)):
                self.m_overlay_hits.add()
                self._note_access(gaddr, read=True)
                self.h_read.record(self.sim.now - start)
                lo = offset - pending.offset
                return pending.data[lo : lo + length]
            # Partial overlap: force the write down before reading remotely.
            yield from self._gsync_traced(server_id=pending.server_id)

        data = yield from self._remote_read(gaddr, meta, offset, length,
                                            span_op=span_op)
        self._note_access(gaddr, read=True)
        self.h_read.record(self.sim.now - start)
        return data

    def gwrite(self, gaddr: int, data: bytes, offset: int = 0) -> Generator[Any, Any, None]:
        """Write ``data`` into an object at ``offset``.

        Retries per the client's :class:`RetryPolicy`; in degraded mode a
        write whose proxy ring is unavailable or stalled falls back to the
        direct-to-NVM path instead of blocking.
        """
        hist = self.sim.history
        if hist is not None:
            tok = hist.invoke(self.name, "write", gaddr,
                              value=hist.encode(data), offset=offset,
                              length=len(data))
            try:
                yield from self._gwrite_traced(gaddr, data, offset)
            except BaseException as exc:
                # A failed write is *indeterminate*: an abandoned attempt
                # (deadline, crash) may still land later.  The checker must
                # treat it as possibly-applied, so record info, not fail.
                hist.info(tok, exc)
                raise
            hist.ok(tok)
            return
        yield from self._gwrite_traced(gaddr, data, offset)

    def _gwrite_traced(self, gaddr: int, data: bytes,
                       offset: int = 0) -> Generator[Any, Any, None]:
        rec = self.sim.spans
        if rec is None:
            yield from self._resilient(
                "gwrite", lambda: self._gwrite_once(gaddr, data, offset))
            return
        t0 = self.sim.now
        op = rec.next_op()
        try:
            yield from self._resilient(
                "gwrite", lambda: self._gwrite_once(gaddr, data, offset, op),
                span_op=op)
        finally:
            rec.record(self.name, "op.gwrite", t0, op=op, gaddr=hex(gaddr),
                       bytes=len(data))

    def _gwrite_once(self, gaddr: int, data: bytes, offset: int = 0,
                     span_op: int = 0) -> Generator[Any, Any, None]:
        self._require_attached()
        self._check_lease_fence("gwrite")
        if not data:
            raise FatalError("empty write")
        start = self.sim.now
        meta = self._cached_meta(gaddr)
        if meta is None:
            meta = yield from self._meta(gaddr, span_op=span_op)
        self._check_bounds(meta, offset, len(data))
        yield from self.node.cpu_work()
        self.m_writes.add()

        conn = self._conns[meta.server_id]
        use_proxy = (
            self.config.enable_proxy
            and conn.ring is not None
            and len(data) <= proxy_payload_capacity(
                conn.ring.slot_size, commit=self.config.proxy_commit)
        )
        staged = False
        if use_proxy:
            staged = yield from self._proxy_write(conn, gaddr, offset, data,
                                                  span_op=span_op)
        if staged:
            self.m_proxy_writes.add(len(data))
        else:
            degraded = use_proxy or (self.config.enable_proxy
                                     and self.config.degraded_mode
                                     and conn.ring is None)
            yield from self._direct_write(conn, gaddr, meta, offset, data,
                                          span_op=span_op, degraded=degraded)
            self.m_direct_writes.add(len(data))
            if use_proxy:
                # _proxy_write declined: the ring is presumed stalled.
                self.m_degraded_writes.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "degraded", "stalled ring -> direct write",
                          client=self.name, gaddr=hex(gaddr))
            elif degraded:
                self.m_degraded_writes.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "degraded", "no ring -> direct write",
                          client=self.name, gaddr=hex(gaddr))
        self._note_access(gaddr, read=False)
        self.h_write.record(self.sim.now - start)

    def gsync(self, server_id: Optional[int] = None) -> Generator[Any, Any, None]:
        """Block until outstanding proxy writes have drained to NVM.

        With ``server_id=None``, syncs every server.  Retries per the
        client's :class:`RetryPolicy` (a crash mid-sync surfaces as
        :class:`ServerUnavailableError`; after an auto re-attach the lost
        staged writes are recorded in :attr:`fault_log` and the sync
        trivially completes).
        """
        hist = self.sim.history
        if hist is not None:
            tok = hist.invoke(self.name, "sync", None, server=server_id)
            try:
                yield from self._gsync_traced(server_id)
            except BaseException as exc:
                hist.info(tok, exc)  # staged writes may have drained anyway
                raise
            hist.ok(tok)
            return
        yield from self._gsync_traced(server_id)

    def _gsync_traced(
            self, server_id: Optional[int] = None) -> Generator[Any, Any, None]:
        rec = self.sim.spans
        if rec is None:
            yield from self._resilient(
                "gsync", lambda: self._gsync_once(server_id))
            return
        t0 = self.sim.now
        op = rec.next_op()
        try:
            yield from self._resilient(
                "gsync", lambda: self._gsync_once(server_id, op), span_op=op)
        finally:
            rec.record(self.name, "op.gsync", t0, op=op)

    def _gsync_once(self, server_id: Optional[int] = None,
                    span_op: int = 0) -> Generator[Any, Any, None]:
        self._require_attached()
        self._check_lease_fence("gsync")
        targets = [server_id] if server_id is not None else sorted(self._conns)
        for sid in targets:
            conn = self._conns[sid]
            if conn.ring is None:
                # Mid-reattach (or ring torn down): sync cannot vouch for
                # writes still staged toward this server — fail typed rather
                # than return a hollow success.
                if any(p.server_id == sid for p in self._overlay.values()):
                    raise StaleRingError(
                        f"gsync: ring to server {sid} is down with writes "
                        "still staged", server_id=sid)
                continue
            if conn.written <= conn.drained_known:
                continue
            rec = self.sim.spans
            t0 = self.sim.now if rec is not None else 0
            backoff = 0
            while conn.drained_known < conn.written:
                if conn.ring is None:
                    # Ring torn down mid-wait (crash / reattach handshake):
                    # same verdict as finding it down up front.
                    raise StaleRingError(
                        f"gsync: ring to server {sid} is down with writes "
                        "still staged", server_id=sid)
                yield from self._poll_drained(conn)
                if conn.drained_known < conn.written:
                    backoff = min(backoff + 1, 5)
                    yield self.sim.sleep(500 * (1 << backoff))
            self._prune_overlay(sid)
            if rec is not None:
                rec.record(self.name, "phase.drain_wait", t0, op=span_op,
                           server=sid)

    def reattach_server(self, server_id: int) -> Generator[Any, Any, list]:
        """Re-establish state with a recovered server.

        Returns the global addresses of this client's writes that were still
        staged in the (lost) proxy ring — the data that did NOT survive the
        crash.  Applications decide whether to replay them.

        The session bookkeeping (lost-write report, counters, epoch bump)
        happens only *after* the ring handshake succeeds, in one atomic
        (yield-free) step — a failed re-attach against a still-dead server
        leaves the session state untouched, so the eventual successful
        re-attach reports each lost write exactly once.
        """
        self._require_attached()
        conn = self._conns[server_id]
        new_ring = None
        if self.config.enable_proxy:
            prev_ring = conn.ring
            # Writers must not stage into the old (torn-down) ring while the
            # handshake is in flight; they either fail typed or, in degraded
            # mode, take the direct path.
            conn.ring = None
            try:
                new_ring = yield from conn.rpc.call(
                    "attach",
                    {"client": self.name, "qp_num": conn.data_qp.remote.qp_num},
                )
            except BaseException:
                conn.ring = prev_ring
                raise
        lost = sorted(
            g for g, p in self._overlay.items() if p.server_id == server_id
        )
        for g in lost:
            del self._overlay[g]
        conn.written = 0
        conn.drained_known = 0
        # Location metadata for that server's objects is stale (the DRAM
        # cache is empty now); bump the server epoch so every cached entry
        # for it reads as a miss and is re-learned lazily — O(1) instead of
        # scanning the whole metadata cache.
        self._srv_epoch[server_id] = self._srv_epoch.get(server_id, 0) + 1
        if self.config.enable_proxy:
            conn.ring = new_ring
        return lost

    def reattach_master(self, shard: int = 0) -> Generator[Any, Any, None]:
        """Re-join a restarted (or fencing) master shard.

        Presents the old uid so the master re-adopts this identity instead
        of minting a new one — cached metadata, lock attribution, and the
        journal-rebuilt directory all keep working.  Adopts whatever epoch
        the master grants (bumped past ours if we were fenced), clears the
        fenced flag, and restarts the heartbeat.  Proxy rings are NOT
        re-established here; the StaleRingError machinery heals those
        lazily per server.
        """
        self._require_attached()
        info = yield from self._master_call(
            "attach",
            {"client": self.name, "uid": self.uid, "epoch": self.fence_epoch},
            shard=shard,
        )
        self.uid = info["client_id"]
        self.fence_epoch = info.get("epoch", self.fence_epoch)
        self.lease_ns = info.get("lease_ns", self.lease_ns)
        self._fenced = False
        if self.lease_ns:
            self.lease_deadline = self.sim.now + self.lease_ns
            self._last_renew_ns = self.sim.now
            self._start_heartbeat()

    # ------------------------------------------------------------------
    # Crash / revive (driven by the fault injector)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop this client cold: heartbeats cease, so its lease lapses and
        the master recovers its locks/pins/rings.  Application processes
        built on this client are the caller's to park."""
        if self._crashed:
            return
        self._crashed = True
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "client crashed", client=self.name)

    def revive(self) -> None:
        """Bring a crashed client back as a *zombie*: its lease has usually
        lapsed by now, so lock ops fence locally until
        :meth:`reattach_master` rejoins under a fresh epoch."""
        if not self._crashed:
            return
        self._crashed = False
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "client revived", client=self.name)
        if (self.lease_ns and not self._fenced
                and self.sim.now < self.lease_deadline):
            self._start_heartbeat()

    # ------------------------------------------------------------------
    # Lease heartbeats
    # ------------------------------------------------------------------
    def _start_heartbeat(self) -> None:
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            return
        self._heartbeat_proc = self.sim.spawn(
            self._heartbeat_loop(), name=f"{self.name}.heartbeat")

    def _heartbeat_loop(self) -> Generator[Any, Any, None]:
        """Renew the lease at lease/3.  Reports piggyback renewals for
        free; this loop only issues a standalone ``renew`` when no report
        went out recently, so an idle client stays alive too."""
        interval = max(1, self.lease_ns // 3)
        while True:
            yield self.sim.timeout(interval)
            if self._crashed or self._fenced or not self.lease_ns:
                return
            # Secondary shards lease us independently and see piggybacked
            # renewals only for objects they own, so renew them on every
            # tick regardless of report recency.
            for shard in range(1, self._num_shards):
                yield from self._renew_shard(shard)
                if self._fenced:
                    return
            if self.sim.now - self._last_renew_ns < interval:
                continue  # a piggybacked report renewed recently
            try:
                reply = yield from self._master_call(
                    "renew", {"client": self.name, "epoch": self.fence_epoch})
            except StaleTermError:
                # Our master was deposed: rotate / re-attach so renewals
                # reach the incumbent before the lease deadline does.
                if self.config.auto_reattach:
                    yield from self._auto_reattach_master()
                continue
            except (MasterUnavailableError, PartitionSuspected, RpcError):
                continue  # master down/recovering: keep trying until fenced
            if reply.get("ok"):
                self._note_renewal(reply.get("lease_ns", self.lease_ns))
                continue
            reason = reply.get("reason")
            if reason == "unknown" and self.config.auto_reattach:
                # A restarted master forgot us: re-adopt our identity.
                yield from self._auto_reattach_master()
                continue
            self._fenced = True
            self.m_fence_rejections.add()
            if self.sim.tracer is not None:
                trace(self.sim, "fence", "heartbeat fenced", client=self.name,
                      reason=reason)
            return

    def _renew_shard(self, shard: int) -> Generator[Any, Any, None]:
        """One standalone renewal against a secondary shard; failures are
        swallowed (the next tick tries again), a ``fenced`` verdict sets
        the global fenced flag — the epoch is retired everywhere."""
        try:
            reply = yield from self._master_call(
                "renew", {"client": self.name, "epoch": self.fence_epoch},
                shard=shard)
        except StaleTermError:
            if self.config.auto_reattach:
                yield from self._reattach_shard_quietly(shard)
            return
        except (RetryableError, RpcError):
            return
        if reply.get("ok"):
            return
        if reply.get("reason") == "unknown" and self.config.auto_reattach:
            # A restarted shard forgot us: re-adopt our identity there.
            yield from self._reattach_shard_quietly(shard)
            return
        self._fenced = True
        self.m_fence_rejections.add()
        if self.sim.tracer is not None:
            trace(self.sim, "fence", "heartbeat fenced", client=self.name,
                  shard=shard)

    def _reattach_shard_quietly(self, shard: int) -> Generator[Any, Any, None]:
        """Re-adopt our identity at one shard, swallowing failures.

        The heartbeat loop is the only thing keeping N-1 other leases
        alive — one shard's reattach failing (still recovering, dropped
        on a lossy link) must cost a tick, not the whole loop."""
        try:
            yield from self._auto_reattach_master(shard)
        except (RetryableError, RpcError):
            pass  # next tick retries; the lease has 3 ticks of slack

    def _note_renewal(self, lease_ns: int) -> None:
        self._last_renew_ns = self.sim.now
        self.lease_deadline = self.sim.now + (lease_ns or self.lease_ns)
        self.m_lease_renewals.add()

    # ------------------------------------------------------------------
    # Resilience engine: retries, deadlines, auto-reattach
    # ------------------------------------------------------------------
    def _jitter_rng(self):
        if self._retry_rng is None:
            self._retry_rng = self.sim.rng.stream(f"{self.name}.retry")
        return self._retry_rng

    def _resilient(self, op: str, attempt_factory,
                   span_op: int = 0) -> Generator[Any, Any, Any]:
        """Run one op under the active :class:`RetryPolicy`.

        Pay-as-you-go: with the default policy (one attempt, no deadline)
        this is a plain ``yield from`` of the attempt — no extra simulated
        events, so virtual-time results are bit-identical to the
        pre-resilience client.
        """
        policy = self.retry_policy
        start = self.sim.now
        attempt = 1
        while True:
            try:
                if policy.deadline_ns:
                    result = yield from self._attempt_with_deadline(
                        op, attempt_factory, start, policy)
                else:
                    result = yield from attempt_factory()
                return result
            except RetryableError as exc:
                if attempt >= policy.max_attempts:
                    raise
                if (policy.deadline_ns
                        and self.sim.now - start >= policy.deadline_ns):
                    self.m_deadline_misses.add()
                    raise DeadlineExceededError(
                        f"{op} gave up after {self.sim.now - start} ns "
                        f"(deadline {policy.deadline_ns} ns): {exc}") from exc
                self.m_retries.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "retry", f"{op} attempt {attempt} failed",
                          client=self.name, cause=type(exc).__name__)
                server_id = getattr(exc, "server_id", None)
                if self.config.auto_reattach and server_id is not None:
                    yield from self._auto_reattach(server_id)
                elif isinstance(exc, LeaseExpiredError):
                    # May raise FencedError: a lapse the master resolved by
                    # retiring our epoch is terminal, not retryable.
                    yield from self._lease_lapse_probe(op)
                elif (self.config.auto_reattach
                        and isinstance(exc, (MasterUnavailableError,
                                             PartitionSuspected,
                                             StaleTermError))):
                    # All three mean "the control plane, not this op, is the
                    # problem": re-attach the shard that failed (rotating to
                    # a standby master if wired) before burning the next
                    # attempt.
                    yield from self._auto_reattach_master(
                        getattr(exc, "shard", 0))
                rec = self.sim.spans
                t_wait = self.sim.now if rec is not None else 0
                yield self.sim.sleep(
                    policy.backoff_ns(attempt, self._jitter_rng()))
                if rec is not None:
                    rec.record(self.name, "phase.retry_wait", t_wait,
                               op=span_op, attempt=attempt,
                               cause=type(exc).__name__)
                attempt += 1

    def _attempt_with_deadline(self, op: str, attempt_factory, start: int,
                               policy: RetryPolicy) -> Generator[Any, Any, Any]:
        """One attempt raced against the remaining deadline budget.

        A timed-out attempt is *abandoned*, never interrupted: interrupting
        a process parked in a ``Store.get()`` would leave a zombie getter
        that silently swallows the next item (a scratch-slot leak).  The
        orphan runs to completion in the background — its buffers are
        released and a failure with no waiters is stored silently — while
        the caller gets the typed deadline error now.
        """
        remaining = policy.deadline_ns - (self.sim.now - start)
        if remaining <= 0:
            self.m_deadline_misses.add()
            raise DeadlineExceededError(
                f"{op} deadline of {policy.deadline_ns} ns exhausted")
        proc = self.sim.spawn(attempt_factory(), name=f"{self.name}.{op}")
        timer = self.sim.timeout(remaining)
        # A failed attempt fails the any_of, re-raising its typed error here.
        yield self.sim.any_of([proc, timer])
        if proc.triggered:
            return proc.value  # raises the attempt's failure, if any
        self.m_deadline_misses.add()
        if self.sim.tracer is not None:
            trace(self.sim, "retry", f"{op} abandoned at deadline",
                  client=self.name, elapsed_ns=self.sim.now - start)
        raise DeadlineExceededError(
            f"{op} exceeded its {policy.deadline_ns} ns deadline")

    def _auto_reattach(self, server_id: int) -> Generator[Any, Any, None]:
        """Coalesced re-attach: the first failed op runs the handshake, any
        concurrent failures wait on its gate.  Failure (server still down)
        is swallowed — the caller backs off and retries, re-entering here.
        """
        gate = self._reattach_gates.get(server_id)
        if gate is not None:
            yield gate
            return
        gate = self.sim.event(name=f"{self.name}.reattach{server_id}")
        self._reattach_gates[server_id] = gate
        try:
            try:
                lost = yield from self.reattach_server(server_id)
            except (RetryableError, RpcError) as exc:
                if self.sim.tracer is not None:
                    trace(self.sim, "failover", "re-attach failed",
                          client=self.name, server=server_id,
                          cause=type(exc).__name__)
            else:
                self.m_failovers.add()
                if lost:
                    self.m_lost_writes.add(len(lost))
                self.fault_log.append({
                    "time_ns": self.sim.now,
                    "server_id": server_id,
                    "lost": lost,
                })
                if self.sim.tracer is not None:
                    trace(self.sim, "failover", "re-attached",
                          client=self.name, server=server_id, lost=len(lost))
        finally:
            self._reattach_gates.pop(server_id, None)
            gate.succeed()

    def _lease_lapse_probe(self, op: str) -> Generator[Any, Any, None]:
        """Resolve a *locally* lapsed lease before the next attempt.

        The lapse is ambiguous: either the master was merely unreachable
        longer than one lease (an op parked in retry backoff outlasted the
        deadline — recoverable), or the master actually expired us and
        retired our epoch (our locks are gone — terminal).  A zombie must
        not be silently re-attached under a fresh epoch mid-op, so probe
        with a ``renew`` carrying our current epoch and let the master's
        verdict pick the branch:

        * ``ok`` — lease re-established at the same epoch; retry proceeds.
        * ``fenced`` — the epoch was retired: mark fenced and raise the
          terminal :class:`FencedError` the zombie contract promises.
        * ``unknown`` — a restarted master forgot us; a full re-attach
          re-adopts our identity (same epoch via the max rule).
        * probe unreachable — back off and probe again next attempt.
        """
        try:
            reply = yield from self._master_call(
                "renew", {"client": self.name, "epoch": self.fence_epoch})
        except StaleTermError:
            if self.config.auto_reattach:
                yield from self._auto_reattach_master()
            return
        except RetryableError:
            return  # master still unreachable: keep heartbeating + retrying
        if reply.get("ok"):
            self._note_renewal(reply.get("lease_ns", self.lease_ns))
            return
        if reply.get("reason") == "unknown":
            if self.config.auto_reattach:
                yield from self._auto_reattach_master()
            return
        self._fenced = True
        if self.sim.tracer is not None:
            trace(self.sim, "fence", f"{op} fenced after lease lapse",
                  client=self.name, epoch=self.fence_epoch)
        raise FencedError(
            f"{op}: lease lapsed and the master fenced this epoch; "
            "reattach_master() to rejoin")

    def _auto_reattach_master(self, shard: int = 0) -> Generator[Any, Any, None]:
        """Coalesced master re-attach, mirroring :meth:`_auto_reattach`:
        the first op to hit a dead/recovering master shard runs the
        handshake, concurrent failures against the SAME shard wait on its
        gate (other shards re-attach independently).  Failure is
        swallowed — the caller backs off and retries."""
        gate = self._reattach_master_gates.get(shard)
        if gate is not None:
            yield gate
            return
        gate = self.sim.event(
            name=f"{self.name}.reattach_master" + (f"_s{shard}" if shard else ""))
        self._reattach_master_gates[shard] = gate
        try:
            try:
                yield from self.reattach_master(shard)
            except (RetryableError, RpcError) as exc:
                if self.sim.tracer is not None:
                    trace(self.sim, "failover", "master re-attach failed",
                          client=self.name, shard=shard,
                          cause=type(exc).__name__)
                # Next retry tries the shard's next wired master (no-op
                # without standbys): an unreachable or deposed master
                # should not absorb the whole retry budget when a live one
                # exists.
                self._rotate_master(shard)
            else:
                self.m_master_failovers.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "failover", "re-attached to master",
                          client=self.name, shard=shard,
                          epoch=self.fence_epoch)
        finally:
            self._reattach_master_gates.pop(shard, None)
            gate.succeed()

    def _check_wc(self, wc, what: str, conn: _ServerConn,
                  ring: bool = False) -> None:
        """Classify a failed completion into the typed error taxonomy."""
        if wc.ok:
            return
        status = wc.status
        if status is WcStatus.RETRY_EXCEEDED:
            raise ServerUnavailableError(
                f"{what} failed: {status}", server_id=conn.desc.server_id)
        if ring and status is WcStatus.REMOTE_ACCESS_ERROR:
            # The ring MR was deregistered by a server restart; the data /
            # cache / lock MRs survive, so only ring traffic maps here.
            raise StaleRingError(
                f"{what} failed: {status} (ring torn down by a restart)",
                server_id=conn.desc.server_id)
        raise FatalError(f"{what} failed: {status}")

    # Batched operations --------------------------------------------------
    def gread_many(self, gaddrs) -> Generator[Any, Any, list]:
        """Read many whole objects with true doorbell batching; results in
        argument order.

        Reads are grouped by home server; each group's RDMA READs (DRAM
        cache or NVM, per object) are posted with a single
        :meth:`~repro.rdma.qp.QueuePair.post_send_many` doorbell, and
        completions are consumed *out of order* as they arrive — a finished
        read is processed (and its scratch slot recycled) while
        earlier-posted reads are still in flight.  Adjacent NVM reads in a
        doorbell are additionally tagged for server-side read combining.

        Items the batched path cannot serve — overlay partial overlaps,
        objects larger than a scratch slot, stale cache tags, failed
        completions — fall back to serial :meth:`gread` (which retries per
        the :class:`RetryPolicy`); the first failure, in argument order,
        propagates.
        """
        gaddrs = list(gaddrs)
        hist = self.sim.history
        if hist is not None:
            # One event per object, all sharing the batch's time window —
            # conservative (wider windows admit more linearizations) but
            # sound.
            toks = [hist.invoke(self.name, "read", g) for g in gaddrs]
            try:
                results = yield from self._gread_many_traced(gaddrs)
            except BaseException as exc:
                for tok in toks:
                    hist.fail(tok, exc)
                raise
            for tok, data in zip(toks, results):
                hist.ok(tok, value=hist.encode(data))
            return results
        results = yield from self._gread_many_traced(gaddrs)
        return results

    def _gread_many_traced(self, gaddrs) -> Generator[Any, Any, list]:
        rec = self.sim.spans
        if rec is None:
            results = yield from self._gread_many_once(gaddrs)
            return results
        t0 = self.sim.now
        op = rec.next_op()
        try:
            results = yield from self._gread_many_once(gaddrs, span_op=op)
            return results
        finally:
            rec.record(self.name, "op.gread_many", t0, op=op,
                       reads=len(gaddrs))

    def _gread_many_once(self, gaddrs,
                         span_op: int = 0) -> Generator[Any, Any, list]:
        self._require_attached()
        self._check_lease_fence("gread_many")
        start = self.sim.now
        rec = self.sim.spans
        results: list = [None] * len(gaddrs)
        fallback: list = []  # indices routed through serial gread
        groups: Dict[int, list] = {}  # server_id -> [(idx, gaddr, meta, len)]
        for idx, gaddr in enumerate(gaddrs):
            meta = self._cached_meta(gaddr)
            if meta is None:
                try:
                    meta = yield from self._meta(gaddr, span_op=span_op)
                except ClientError:
                    fallback.append(idx)  # serial gread retries the lookup
                    continue
            length = meta.size
            pending = self._overlay.get(gaddr)
            if pending is not None:
                if pending.offset == 0 and len(pending.data) >= length:
                    self.m_reads.add()
                    self.m_overlay_hits.add()
                    self._note_access(gaddr, read=True)
                    self.h_read.record(self.sim.now - start)
                    results[idx] = pending.data[:length]
                else:
                    fallback.append(idx)  # partial overlap: gread syncs first
                continue
            if length > _SCRATCH_SLOT_SIZE - CACHE_TAG_BYTES:
                fallback.append(idx)  # chunked path stays serial
                continue
            groups.setdefault(meta.server_id, []).append(
                (idx, gaddr, meta, length))

        if groups:
            # One CPU pass covers building every WQE in the batch.
            yield from self.node.cpu_work()
        mux = CompletionMux(self.sim, name=f"{self.name}.readmux")

        def _consume_one():
            """Process whichever posted read completes next."""
            tag, ev = yield mux.next_event()
            idx, gaddr, length, span, conn, scratch_off, cached, t_post = tag
            try:
                wc = ev.value
                self._check_wc(wc, "RDMA read", conn)
            except ClientError:
                self._scratch_free.put(scratch_off)
                fallback.append(idx)  # serial gread applies the RetryPolicy
                return
            raw = self._scratch_mr.peek(scratch_off, span)
            self._scratch_free.put(scratch_off)
            if cached:
                if not tag_matches(raw, gaddr):
                    # Stale metadata (demoted / slot reused): refresh via the
                    # serial path, which re-looks-up and retries.
                    self.m_tag_misses.add()
                    if rec is not None:
                        rec.record(self.name, "phase.cache_read", t_post,
                                   op=span_op, hit=False, bytes=length)
                    self._invalidate_meta(gaddr)
                    self._prefetch_requested.discard(gaddr)
                    fallback.append(idx)
                    return
                self.m_cache_hits.add()
                results[idx] = raw[CACHE_TAG_BYTES : CACHE_TAG_BYTES + length]
                if rec is not None:
                    rec.record(self.name, "phase.cache_read", t_post,
                               op=span_op, hit=True, bytes=length)
            else:
                self.m_nvm_reads.add()
                results[idx] = raw
                if rec is not None:
                    rec.record(self.name, "phase.nvm_read", t_post,
                               op=span_op, bytes=length)
            self.m_reads.add()
            self._note_access(gaddr, read=True)
            self.h_read.record(self.sim.now - start)

        def _post(conn, wrs, tags):
            """Ring one doorbell for a server's accumulated READs."""
            self._attach_combine_groups(wrs)
            self.h_read_batch.record(len(wrs))
            for ev, tag in zip(conn.data_qp.post_send_many(wrs), tags):
                mux.add(ev, tag)

        for sid in sorted(groups):
            conn = self._conns[sid]
            wrs: list = []
            tags: list = []
            for idx, gaddr, meta, length in groups[sid]:
                # Scratch acquisition can never deadlock on our own batch:
                # recycle completed reads first, and if none are in flight
                # while WRs are pending here, ring the doorbell early (a
                # batch larger than the scratch pool degrades to several
                # doorbells instead of wedging).
                while True:
                    ok, scratch_off = self._scratch_free.try_get()
                    if ok:
                        break
                    if len(mux):
                        yield from _consume_one()
                    elif wrs:
                        _post(conn, wrs, tags)
                        wrs, tags = [], []
                    else:
                        scratch_off = yield self._scratch_free.get()
                        break
                cached = self.config.enable_cache and meta.cached
                if cached:
                    span = CACHE_TAG_BYTES + length
                    rkey, roff = conn.desc.cache_rkey, meta.cache_offset
                else:
                    span = length
                    rkey, roff = conn.desc.data_rkey, meta.nvm_offset
                wrs.append(WorkRequest(
                    opcode=Opcode.RDMA_READ,
                    local_mr=self._scratch_mr, local_offset=scratch_off,
                    length=span, remote_rkey=rkey, remote_offset=roff,
                ))
                tags.append((idx, gaddr, length, span, conn, scratch_off,
                             cached, self.sim.now))
            if wrs:
                _post(conn, wrs, tags)

        inflight = len(mux)
        t_wait = self.sim.now
        while len(mux):
            yield from _consume_one()
        if rec is not None and inflight:
            rec.record(self.name, "phase.pipeline_wait", t_wait, op=span_op,
                       inflight=inflight)

        failures: list = []
        for idx in sorted(fallback):
            try:
                results[idx] = yield from self._gread_traced(gaddrs[idx])
            except ClientError as exc:
                failures.append((idx, exc))
        if failures:
            raise failures[0][1]
        return results

    @staticmethod
    def _attach_combine_groups(wrs) -> None:
        """Tag contiguous READs in one doorbell for server-side combining.

        Runs of RDMA_READ WRs whose remote ranges are adjacent within the
        same remote region share a
        :class:`~repro.core.server.ReadCombineGroup`; the target services
        the whole run as a single device transfer (one per-transfer setup
        charge — the Optane win) and slices each member's bytes out of it.
        """
        by_rkey: Dict[int, list] = {}
        for wr in wrs:
            if wr.opcode is Opcode.RDMA_READ:
                by_rkey.setdefault(wr.remote_rkey, []).append(wr)
        for rkey, group in by_rkey.items():
            group.sort(key=lambda w: w.remote_offset)
            run = [group[0]]
            for wr in group[1:]:
                prev = run[-1]
                if wr.remote_offset == prev.remote_offset + prev.length:
                    run.append(wr)
                else:
                    GengarClient._seal_combine_run(rkey, run)
                    run = [wr]
            GengarClient._seal_combine_run(rkey, run)

    @staticmethod
    def _seal_combine_run(rkey: int, run: list) -> None:
        if len(run) < 2:
            return
        base = run[0].remote_offset
        total = run[-1].remote_offset + run[-1].length - base
        grp = ReadCombineGroup(rkey=rkey, base_offset=base,
                               total_length=total, members=len(run))
        for wr in run:
            wr.combine = grp

    def gwrite_many(self, writes) -> Generator[Any, Any, None]:
        """Issue many ``(gaddr, data)`` writes concurrently.

        Every item is attempted even when siblings fail; failures are
        collected and raised together as :class:`BatchError`, whose
        ``failures`` attribute lists ``(index, error)`` pairs in argument
        order — callers know exactly which writes landed and which did not.
        """
        self._require_attached()
        writes = list(writes)
        procs = [self.sim.spawn(self.gwrite(g, data), name=f"{self.name}.batchw")
                 for g, data in writes]
        failures: list = []
        for i, p in enumerate(procs):
            try:
                yield p
            except ClientError as exc:
                failures.append((i, exc))
        if failures:
            raise BatchError("gwrite_many", failures)

    # Async operations ----------------------------------------------------
    def gread_async(self, gaddr: int, offset: int = 0,
                    length: Optional[int] = None) -> "GFuture":
        """Issue a read without blocking; returns a :class:`GFuture`.

        The op runs as its own process inside the client's outstanding-op
        window (``config.max_outstanding_reads``): issue never blocks the
        caller, but ops past the window queue for a slot before touching
        the wire, bounding scratch/QP pressure.  Harvest with
        ``yield from fut.wait()``.
        """
        self._require_attached()
        proc = self.sim.spawn(self._windowed(self.gread(gaddr, offset, length)),
                              name=f"{self.name}.aread")
        return GFuture(proc)

    def gwrite_async(self, gaddr: int, data: bytes,
                     offset: int = 0) -> "GFuture":
        """Issue a write without blocking; returns a :class:`GFuture`.

        Same windowing as :meth:`gread_async`.  Note ``gsync`` only covers
        proxy writes already *staged*: to guarantee durability ordering,
        ``yield from fut.wait()`` before syncing.
        """
        self._require_attached()
        proc = self.sim.spawn(self._windowed(self.gwrite(gaddr, data, offset)),
                              name=f"{self.name}.awrite")
        return GFuture(proc)

    def _windowed(self, op_gen) -> Generator[Any, Any, Any]:
        """Run one async op inside the outstanding-op window."""
        rec = self.sim.spans
        t0 = self.sim.now
        token = yield self._op_tokens.get()
        if rec is not None and self.sim.now > t0:
            rec.record(self.name, "phase.pipeline_wait", t0, waiting="window")
        self._async_inflight += 1
        if self._async_inflight > self._async_peak:
            self._async_peak = self._async_inflight
        try:
            result = yield from op_gen
            return result
        finally:
            self._async_inflight -= 1
            self._op_tokens.put(token)

    def gwrite_batch(self, writes) -> Generator[Any, Any, None]:
        """Doorbell-batched proxy writes for many small ``(gaddr, data)``
        pairs.

        Unlike :meth:`gwrite_many` (which spawns one full gwrite per item),
        this stages every inline-eligible proxy write per server and posts
        each server's work requests with a single
        :meth:`~repro.rdma.qp.QueuePair.post_send_many` doorbell, paying the
        client CPU pass once for the whole batch.  Writes that cannot take
        the inline proxy path (proxy disabled, payload too large for a ring
        slot or for NIC inlining) fall back to the regular gwrite path.
        """
        hist = self.sim.history
        if hist is not None:
            writes = list(writes)
            toks = [hist.invoke(self.name, "write", g, value=hist.encode(d),
                                length=len(d))
                    for g, d in writes]
            try:
                yield from self._gwrite_batch_traced(writes)
            except BaseException as exc:
                for tok in toks:
                    hist.info(tok, exc)  # indeterminate: some may have landed
                raise
            for tok in toks:
                hist.ok(tok)
            return
        yield from self._gwrite_batch_traced(writes)

    def _gwrite_batch_traced(self, writes) -> Generator[Any, Any, None]:
        rec = self.sim.spans
        if rec is None:
            yield from self._gwrite_batch_once(writes)
            return
        t0 = self.sim.now
        op = rec.next_op()
        try:
            yield from self._gwrite_batch_once(writes, span_op=op)
        finally:
            rec.record(self.name, "op.gwrite_batch", t0, op=op,
                       writes=len(writes))

    def _gwrite_batch_once(self, writes,
                           span_op: int = 0) -> Generator[Any, Any, None]:
        self._require_attached()
        self._check_lease_fence("gwrite_batch")
        start = self.sim.now
        staged: Dict[int, list] = {}  # server_id -> [(gaddr, data, payload)]
        fallback = []
        for gaddr, data in writes:
            if not data:
                raise FatalError("empty write")
            meta = self._cached_meta(gaddr)
            if meta is None:
                meta = yield from self._meta(gaddr, span_op=span_op)
            self._check_bounds(meta, 0, len(data))
            conn = self._conns[meta.server_id]
            commit = self.config.proxy_commit
            eligible = (
                self.config.enable_proxy
                and conn.ring is not None
                and len(data) <= proxy_payload_capacity(
                    conn.ring.slot_size, commit=commit)
            )
            if eligible:
                payload = pack_proxy_slot(gaddr, 0, data)
                # The commit word (appended at seq-assignment time below)
                # rides in the same inline WQE.
                extra = PROXY_COMMIT_BYTES if commit else 0
                if self.node.nic.is_inline(len(payload) + extra):
                    staged.setdefault(meta.server_id, []).append(
                        (gaddr, data, payload))
                    continue
            fallback.append((gaddr, data))

        rec = self.sim.spans
        t_stage = self.sim.now if rec is not None else 0
        if staged:
            # One CPU pass covers building every WQE in the batch.
            yield from self.node.cpu_work()
        pending = []  # (done_event, conn, gaddr, data, seq)
        for sid in sorted(staged):
            conn = self._conns[sid]
            ring = conn.ring
            batch = staged[sid]
            # Chunk to the ring size: a doorbell can never outrun the ring.
            for lo in range(0, len(batch), ring.slots):
                chunk = batch[lo : lo + ring.slots]
                if conn.written - conn.drained_known + len(chunk) > ring.slots:
                    ok = yield from self._await_ring_space(conn, need=len(chunk))
                    if not ok:
                        # Stalled ring: route the chunk through the regular
                        # gwrite path, which applies the degraded fallback
                        # (and its ordering guard) per write.
                        fallback.extend((g, d) for g, d, _p in chunk)
                        continue
                wrs = []
                seqs = []
                for gaddr, data, payload in chunk:
                    seq = conn.written
                    conn.written += 1
                    seqs.append(seq)
                    if self.config.proxy_commit:
                        payload = payload + pack_proxy_commit(seq, payload)
                    wrs.append(WorkRequest(
                        opcode=Opcode.RDMA_WRITE_IMM,
                        remote_rkey=ring.ring_rkey,
                        remote_offset=(seq % ring.slots) * ring.slot_size,
                        imm_data=seq % ring.slots,
                        inline_data=payload,
                        length=len(payload),
                    ))
                events = conn.data_qp.post_send_many(wrs)
                for ev, (gaddr, data, _payload), seq in zip(events, chunk, seqs):
                    pending.append((ev, conn, gaddr, data, seq))
        if pending:
            yield self.sim.all_of([ev for ev, *_ in pending])
            for ev, conn, gaddr, data, seq in pending:
                wc = ev.value
                self._check_wc(wc, "proxy write", conn, ring=True)
                self.m_writes.add()
                self.m_proxy_writes.add(len(data))
                self._overlay[gaddr] = _PendingWrite(
                    offset=0, data=data,
                    server_id=conn.desc.server_id, seq=seq + 1,
                )
                self._last_staged = (conn.desc.server_id, gaddr, 0, data)
                self._note_access(gaddr, read=False)
                self.h_write.record(self.sim.now - start)
        if rec is not None and staged:
            rec.record(self.name, "phase.batch_stage", t_stage, op=span_op,
                       servers=len(staged), staged=len(pending))
        for gaddr, data in fallback:
            yield from self._gwrite_traced(gaddr, data)

    # Lock API (delegates to the consistency layer) ----------------------
    def glock(self, gaddr: int, write: bool = True) -> Generator[Any, Any, None]:
        """Acquire the object's lock (exclusive by default, shared if not)."""
        hist = self.sim.history
        tok = -1
        if hist is not None:
            # The epoch rides the event: the checker's monotonic-epoch model
            # asserts no lock is ever acquired under an epoch below one a
            # later holder already presented (a fenced zombie re-locking).
            tok = hist.invoke(self.name, "lock", gaddr, write=write,
                              epoch=self.fence_epoch)
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        try:
            if write:
                yield from self.locks.acquire_write(gaddr)
            else:
                yield from self.locks.acquire_read(gaddr)
        except BaseException as exc:
            if hist is not None:
                hist.fail(tok, exc)  # an acquire that failed holds nothing
            raise
        finally:
            if rec is not None:
                rec.record(self.name, "op.glock", t0, op=rec.next_op(),
                           gaddr=hex(gaddr), write=write)
        if hist is not None:
            hist.ok(tok, value=self.fence_epoch)

    def gunlock(self, gaddr: int, write: bool = True) -> Generator[Any, Any, None]:
        """Release the object's lock.  Write unlocks sync first."""
        hist = self.sim.history
        tok = -1
        if hist is not None:
            tok = hist.invoke(self.name, "unlock", gaddr, write=write,
                              epoch=self.fence_epoch)
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        try:
            if write:
                yield from self.locks.release_write(gaddr)
            else:
                yield from self.locks.release_read(gaddr)
        except BaseException as exc:
            if hist is not None:
                hist.fail(tok, exc)
            raise
        finally:
            if rec is not None:
                rec.record(self.name, "op.gunlock", t0, op=rec.next_op(),
                           gaddr=hex(gaddr), write=write)
        if hist is not None:
            hist.ok(tok, value=self.fence_epoch)

    # Transactions (delegates to repro.txn) ------------------------------
    @property
    def txn(self):
        """This client's :class:`~repro.txn.TxnManager` (requires
        ``config.enable_txn``); constructed on first use so the txn-free
        path pays nothing."""
        if self._txn_manager is None:
            from repro.txn import TxnManager

            self._txn_manager = TxnManager(self)
        return self._txn_manager

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _require_attached(self) -> None:
        if not self._attached:
            raise FatalError(f"client {self.name} is not attached; run attach() first")

    def _cached_meta(self, gaddr: int) -> Optional[ObjectMeta]:
        """Hot-key fast path: a valid cache hit costs two dict probes and no
        generator machinery.  Returns None on miss or stale epoch."""
        meta = self._meta_cache.get(gaddr)
        if meta is not None and (self._meta_epoch.get(gaddr)
                                 == self._srv_epoch.get(meta.server_id, 0)):
            return meta
        return None

    def _store_meta(self, meta: ObjectMeta) -> None:
        self._meta_cache[meta.gaddr] = meta
        self._meta_epoch[meta.gaddr] = self._srv_epoch.get(meta.server_id, 0)

    def _meta(self, gaddr: int,
              span_op: int = 0) -> Generator[Any, Any, ObjectMeta]:
        meta = self._cached_meta(gaddr)
        if meta is not None:
            return meta
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        meta = yield from self._master_call(
            "lookup", {"gaddr": gaddr}, shard=self._resolve_shard(gaddr))
        self.m_lookups.add()
        if rec is not None:
            rec.record(self.name, "phase.meta_lookup", t0, op=span_op,
                       gaddr=hex(gaddr))
        if self.config.metadata_cache:
            self._store_meta(meta)
        return meta

    def _invalidate_meta(self, gaddr: int) -> None:
        self._meta_cache.pop(gaddr, None)
        self._meta_epoch.pop(gaddr, None)

    @staticmethod
    def _check_bounds(meta: ObjectMeta, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > meta.size:
            raise FatalError(
                f"access [{offset}, {offset + length}) outside object "
                f"{meta.gaddr:#x} of size {meta.size}"
            )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _remote_read(self, gaddr: int, meta: ObjectMeta, offset: int,
                     length: int,
                     span_op: int = 0) -> Generator[Any, Any, bytes]:
        rec = self.sim.spans
        for _attempt in range(_MAX_META_RETRIES):
            conn = self._conns[meta.server_id]
            if self.config.enable_cache and meta.cached:
                # One READ covering the tag and the requested range.
                span = CACHE_TAG_BYTES + offset + length
                t0 = self.sim.now if rec is not None else 0
                raw = yield from self._rdma_read(
                    conn, conn.desc.cache_rkey, meta.cache_offset, span
                )
                if tag_matches(raw, gaddr):
                    self.m_cache_hits.add()
                    if rec is not None:
                        rec.record(self.name, "phase.cache_read", t0,
                                   op=span_op, hit=True, bytes=length)
                    if self.sim.tracer is not None:
                        trace(self.sim, "cache", "read hit", client=self.name,
                              gaddr=hex(gaddr), bytes=length)
                    return raw[CACHE_TAG_BYTES + offset : CACHE_TAG_BYTES + offset + length]
                # Stale metadata (object demoted / slot reused): refresh.
                self.m_tag_misses.add()
                if rec is not None:
                    rec.record(self.name, "phase.cache_read", t0,
                               op=span_op, hit=False, bytes=length)
                if self.sim.tracer is not None:
                    trace(self.sim, "cache", "tag mismatch -> refresh",
                          client=self.name, gaddr=hex(gaddr))
                self._invalidate_meta(gaddr)
                # Demoted since we prefetched it: eligible to nominate again.
                self._prefetch_requested.discard(gaddr)
                meta = yield from self._meta(gaddr, span_op=span_op)
                continue
            t0 = self.sim.now if rec is not None else 0
            data = yield from self._rdma_read(
                conn, conn.desc.data_rkey, meta.nvm_offset + offset, length
            )
            self.m_nvm_reads.add()
            if rec is not None:
                rec.record(self.name, "phase.nvm_read", t0, op=span_op,
                           bytes=length)
            if self.sim.tracer is not None:
                trace(self.sim, "read", "nvm read", client=self.name,
                      gaddr=hex(gaddr), bytes=length)
            return data
        if self.config.degraded_mode:
            # Cache bypass: NVM is the source of truth, so when the DRAM
            # cache keeps thrashing (e.g. a server replaying promotions
            # after a restart) a degraded client reads the home copy.
            conn = self._conns[meta.server_id]
            t0 = self.sim.now if rec is not None else 0
            data = yield from self._rdma_read(
                conn, conn.desc.data_rkey, meta.nvm_offset + offset, length
            )
            self.m_degraded_reads.add()
            if rec is not None:
                rec.record(self.name, "phase.degraded_read", t0, op=span_op,
                           bytes=length)
            if self.sim.tracer is not None:
                trace(self.sim, "degraded", "metadata thrash -> nvm read",
                      client=self.name, gaddr=hex(gaddr), bytes=length)
            return data
        raise FatalError(f"metadata thrash reading {gaddr:#x}")

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _proxy_write(self, conn: _ServerConn, gaddr: int, offset: int,
                     data: bytes,
                     span_op: int = 0) -> Generator[Any, Any, bool]:
        """Stage one write into the proxy ring.

        Returns True once staged.  Returns False — *declining* the proxy
        path — only when the ring is full and stalled past the degraded-mode
        patience AND the object has no still-staged write of ours, so a
        direct NVM write cannot be overtaken by an older staged one when the
        ring eventually drains.
        """
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        ring = conn.ring
        if conn.written - conn.drained_known >= ring.slots:
            ok = yield from self._await_ring_space(conn)
            if not ok:
                if gaddr not in self._overlay:
                    return False
                # Ordering hazard: wait the stall out (infinite patience).
                yield from self._await_ring_space(conn, patience=0)
        frame = pack_proxy_slot(gaddr, offset, data)
        total = len(frame) + (PROXY_COMMIT_BYTES if self.config.proxy_commit else 0)
        # Acquire the scratch slot (the only potential yield) BEFORE
        # reserving the sequence number: reserve -> post must be atomic in
        # virtual time, so doorbells always reach the server in seq order.
        # A writer parked between the two would let a concurrent (or
        # injected mid-crash) write with a later seq overtake it, and the
        # drain's seq cursor would then reject the earlier frame as torn.
        scratch_off = None
        if not self.node.nic.is_inline(total):
            scratch_off = yield self._scratch_free.get()
        try:
            seq = conn.written
            conn.written += 1
            slot = seq % ring.slots
            payload = frame
            if self.config.proxy_commit:
                # Trailing commit word: the drain loop validates seq ^ crc32
                # before applying, so a write torn mid-flight is skipped,
                # never applied as garbage.
                payload += pack_proxy_commit(seq, frame)
            wr = WorkRequest(
                opcode=Opcode.RDMA_WRITE_IMM,
                remote_rkey=ring.ring_rkey,
                remote_offset=slot * ring.slot_size,
                imm_data=slot,
            )
            if scratch_off is None:
                wr.inline_data = payload
                wr.length = len(payload)
            else:
                self._scratch_mr.poke(scratch_off, payload)
                wr.local_mr = self._scratch_mr
                wr.local_offset = scratch_off
                wr.length = len(payload)
            wc = yield conn.data_qp.post_send(wr)
        finally:
            if scratch_off is not None:
                self._scratch_free.put(scratch_off)
        self._check_wc(wc, "proxy write", conn, ring=True)
        if rec is not None:
            rec.record(self.name, "phase.proxy_stage", t0, op=span_op,
                       server=conn.desc.server_id, bytes=len(data))
        if self.sim.tracer is not None:
            trace(self.sim, "proxy", "staged write", client=self.name,
                  gaddr=hex(gaddr), slot=slot, bytes=len(data))
        # The drained counter is 1-based: write #seq is drained once the
        # counter reaches seq + 1.
        self._overlay[gaddr] = _PendingWrite(
            offset=offset, data=data, server_id=conn.desc.server_id, seq=seq + 1
        )
        self._last_staged = (conn.desc.server_id, gaddr, offset, data)
        return True

    def _direct_write(self, conn: _ServerConn, gaddr: int, meta: ObjectMeta,
                      offset: int, data: bytes, span_op: int = 0,
                      degraded: bool = False) -> Generator[Any, Any, None]:
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        if rec is not None and degraded:
            # Instant marker: the proxy path was declined and this write is
            # falling back to a direct NVM write.
            rec.record(self.name, "phase.degraded_fallback", t0, end_ns=t0,
                       op=span_op)
        yield from self._rdma_write(
            conn, conn.desc.data_rkey, meta.nvm_offset + offset, data
        )
        if self.config.enable_cache and meta.cached:
            fresh = yield from self._verified_cache_write(conn, gaddr, meta, offset, data)
            if not fresh:
                self._invalidate_meta(gaddr)
        if rec is not None:
            rec.record(self.name, "phase.direct_write", t0, op=span_op,
                       bytes=len(data), degraded=degraded)

    def _verified_cache_write(self, conn: _ServerConn, gaddr: int, meta: ObjectMeta,
                              offset: int, data: bytes) -> Generator[Any, Any, bool]:
        """Update the DRAM copy of a cached object, verifying the tag first.

        Without the proxy this costs an extra round trip per write — the
        coherence tax the proxy design eliminates (drains update the cache
        server-side for free).
        """
        raw = yield from self._rdma_read(
            conn, conn.desc.cache_rkey, meta.cache_offset, CACHE_TAG_BYTES
        )
        if not tag_matches(raw, gaddr):
            self.m_tag_misses.add()
            return False
        yield from self._rdma_write(
            conn, conn.desc.cache_rkey,
            meta.cache_offset + CACHE_TAG_BYTES + offset, data,
        )
        return True

    # ------------------------------------------------------------------
    # Proxy flow control
    # ------------------------------------------------------------------
    def _poll_drained(self, conn: _ServerConn) -> Generator[Any, Any, bool]:
        """Fetch the server-side drained counter with one 8-byte READ.

        Returns True when the counter advanced since the last observation.
        """
        raw = yield from self._rdma_read(
            conn, conn.ring.ring_rkey, conn.ring.counter_offset, 8, ring=True
        )
        value = int.from_bytes(raw, "little")
        if value > conn.drained_known:
            conn.drained_known = value
            self._prune_overlay(conn.desc.server_id)
            return True
        return False

    def _await_ring_space(self, conn: _ServerConn, need: int = 1,
                          patience: Optional[int] = None) -> Generator[Any, Any, bool]:
        """Poll the drained counter until ``need`` ring slots are free.

        ``patience`` bounds how many *consecutive no-progress* polls to
        tolerate before giving up and returning False; 0 means poll forever
        (the historical behaviour).  ``None`` resolves from the config:
        ``degraded_patience_polls`` when degraded mode is on, else 0.
        """
        if patience is None:
            patience = (self.config.degraded_patience_polls
                        if self.config.degraded_mode else 0)
        backoff = 0
        stalled_polls = 0
        while True:
            if conn.ring is None:
                # Torn down mid-wait; staging is impossible until reattach.
                raise StaleRingError(
                    f"ring to server {conn.desc.server_id} torn down while "
                    "waiting for slot space", server_id=conn.desc.server_id)
            if conn.written - conn.drained_known + need <= conn.ring.slots:
                return True
            advanced = yield from self._poll_drained(conn)
            if conn.ring is not None and (
                    conn.written - conn.drained_known + need <= conn.ring.slots):
                return True
            stalled_polls = 0 if advanced else stalled_polls + 1
            if patience and stalled_polls >= patience:
                return False
            backoff = min(backoff + 1, 5)
            yield self.sim.sleep(500 * (1 << backoff))

    def _prune_overlay(self, server_id: int) -> None:
        conn = self._conns[server_id]
        stale = [
            g for g, p in self._overlay.items()
            if p.server_id == server_id and p.seq <= conn.drained_known
        ]
        for g in stale:
            del self._overlay[g]

    # ------------------------------------------------------------------
    # Raw verb helpers
    # ------------------------------------------------------------------
    def _rdma_read(self, conn: _ServerConn, rkey: int, remote_offset: int,
                   nbytes: int, ring: bool = False) -> Generator[Any, Any, bytes]:
        if nbytes > _SCRATCH_SLOT_SIZE:
            # Transparent chunking: huge reads issue sequential scratch-sized
            # verbs (one WQE each), like a real library's segmented SGE path.
            parts: list[bytes] = []
            pos = 0
            while pos < nbytes:
                chunk = min(_SCRATCH_SLOT_SIZE, nbytes - pos)
                part = yield from self._rdma_read(conn, rkey,
                                                  remote_offset + pos, chunk,
                                                  ring=ring)
                parts.append(part)
                pos += chunk
            return b"".join(parts)
        scratch_off = yield self._scratch_free.get()
        try:
            wc = yield conn.data_qp.post_send(WorkRequest(
                opcode=Opcode.RDMA_READ,
                local_mr=self._scratch_mr, local_offset=scratch_off, length=nbytes,
                remote_rkey=rkey, remote_offset=remote_offset,
            ))
            self._check_wc(wc, "RDMA read", conn, ring=ring)
            return self._scratch_mr.peek(scratch_off, nbytes)
        finally:
            self._scratch_free.put(scratch_off)

    def _rdma_write(self, conn: _ServerConn, rkey: int, remote_offset: int,
                    data: bytes) -> Generator[Any, Any, None]:
        if len(data) > _SCRATCH_SLOT_SIZE:
            pos = 0
            while pos < len(data):
                chunk = data[pos : pos + _SCRATCH_SLOT_SIZE]
                yield from self._rdma_write(conn, rkey, remote_offset + pos, chunk)
                pos += len(chunk)
            return
        wr = WorkRequest(
            opcode=Opcode.RDMA_WRITE, remote_rkey=rkey, remote_offset=remote_offset,
        )
        if self.node.nic.is_inline(len(data)):
            wr.inline_data = data
            wr.length = len(data)
            wc = yield conn.data_qp.post_send(wr)
        else:
            scratch_off = yield self._scratch_free.get()
            try:
                self._scratch_mr.poke(scratch_off, data)
                wr.local_mr = self._scratch_mr
                wr.local_offset = scratch_off
                wr.length = len(data)
                wc = yield conn.data_qp.post_send(wr)
            finally:
                self._scratch_free.put(scratch_off)
        self._check_wc(wc, "RDMA write", conn)

    def _atomic_cas(self, server_id: int, lock_offset: int, compare: int,
                    swap: int) -> Generator[Any, Any, int]:
        conn = self._conns[server_id]
        wc = yield conn.data_qp.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_CAS,
            remote_rkey=conn.desc.lock_rkey, remote_offset=lock_offset,
            compare=compare, swap=swap,
        ))
        self._check_wc(wc, "atomic CAS", conn)
        return wc.atomic_value

    def _atomic_faa(self, server_id: int, lock_offset: int,
                    add: int) -> Generator[Any, Any, int]:
        conn = self._conns[server_id]
        wc = yield conn.data_qp.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_FAA,
            remote_rkey=conn.desc.lock_rkey, remote_offset=lock_offset,
            add=add,
        ))
        self._check_wc(wc, "atomic FAA", conn)
        return wc.atomic_value

    # ------------------------------------------------------------------
    # Hotness reporting (the RDMA-semantics harvest)
    # ------------------------------------------------------------------
    def _note_access(self, gaddr: int, read: bool) -> None:
        counts = self._access_counts.get(gaddr)
        if counts is None:
            counts = [0, 0]
            self._access_counts[gaddr] = counts
        counts[0 if read else 1] += 1
        if read and self._predictor is not None:
            self._note_read_for_prefetch(gaddr)
        self._ops_since_report += 1
        if (self._ops_since_report >= self.config.report_every_ops
                and not self._report_inflight):
            self._report_inflight = True
            self.sim.spawn(self._send_report(), name=f"{self.name}.report")

    def _send_report(self) -> Generator[Any, Any, None]:
        entries = []
        for gaddr, (reads, writes) in self._access_counts.items():
            # Epoch-stale entries count as absent, so the report payload is
            # byte-identical to one built from an explicitly pruned cache.
            believed = self._cached_meta(gaddr)
            entries.append((gaddr, reads, writes, bool(believed and believed.cached)))
        self._access_counts.clear()
        self._ops_since_report = 0
        piggyback = bool(self.lease_ns and not self._fenced and not self._crashed)
        if self._num_shards > 1:
            # Each shard scores only the objects it owns: split the batch
            # along the shard map (one RPC per shard with entries).
            groups: Dict[int, list] = {}
            for entry in entries:
                groups.setdefault(self._resolve_shard(entry[0]),
                                  []).append(entry)
        else:
            groups = {0: entries}
        try:
            for shard, group in groups.items():
                request: Dict[str, Any] = {"entries": group}
                if piggyback:
                    # Every report doubles as a lease heartbeat for free.
                    request["client"] = self.name
                    request["epoch"] = self.fence_epoch
                try:
                    reply = yield from self._master_call("report", request,
                                                         shard=shard)
                except (MasterUnavailableError, NotMyShard, RpcError):
                    continue  # hotness reports are advisory; drop on the floor
                if piggyback:
                    updates = reply["updates"]
                    verdict = reply["lease"]
                    if verdict == "ok" and shard == 0:
                        # _last_renew_ns gates only the shard-0 standalone
                        # renew; a report that renewed a secondary shard
                        # must not silence it, or an access pattern that
                        # never touches shard 0's objects starves its lease.
                        self._note_renewal(self.lease_ns)
                    elif verdict == "fenced":
                        self._fenced = True
                        self.m_fence_rejections.add()
                        if self.sim.tracer is not None:
                            trace(self.sim, "fence", "report fenced",
                                  client=self.name)
                else:
                    updates = reply
                for gaddr, cached, cache_offset in updates:
                    meta = self._cached_meta(gaddr)
                    if meta is not None:
                        self._store_meta(meta.with_cache(cached, cache_offset))
        finally:
            self._report_inflight = False

    # ------------------------------------------------------------------
    # Prefetch (hotness-driven background promotion)
    # ------------------------------------------------------------------
    def _note_read_for_prefetch(self, gaddr: int) -> None:
        """Admission filter + nomination: called on every read when prefetch
        is enabled.  An object crossing ``admission_threshold`` touches is
        queued for a background promotion request — exactly once while it
        stays (believed) cached — so one-touch objects never pollute the
        DRAM cache on the client's initiative."""
        touches = self._touch_counts.get(gaddr, 0) + 1
        self._touch_counts[gaddr] = touches
        self._predictor.observe(gaddr)
        if touches != self.config.admission_threshold:
            return
        meta = self._cached_meta(gaddr)
        if meta is None or meta.cached:
            return
        if not self._prefetch_safe(meta):
            return
        if gaddr in self._prefetch_requested:
            return
        self._prefetch_requested.add(gaddr)
        self._prefetch_queue.append(gaddr)
        if not self._prefetch_inflight:
            self._prefetch_inflight = True
            self.sim.spawn(self._send_prefetch(),
                           name=f"{self.name}.prefetch")

    def _prefetch_safe(self, meta: ObjectMeta) -> bool:
        """Whether promoting this object behind our back stays coherent.

        A prefetch promotion races this client's own writes: until the
        reply lands, the client believes the object uncached, so a write
        that bypasses the proxy ring (too large for a slot, or proxy off)
        goes straight to NVM and never freshens the just-filled cache
        slot — a validly-tagged slot holding stale bytes.  Writes that
        ride the ring are safe: the server's drain takes a fresh cache
        lookup after every NVM apply, and promotion copies redo on
        concurrent drains.  So: nominate only objects whose every
        possible write is guaranteed to flow through the drain.
        """
        if not self.config.enable_proxy:
            return False
        return meta.size <= proxy_payload_capacity(
            self.config.proxy_slot_size, commit=self.config.proxy_commit)

    def _send_prefetch(self) -> Generator[Any, Any, None]:
        """Background promotion pump: drains the nomination queue in
        batches of ``prefetch_depth``, topping each batch up with the
        stride/frequency predictor's guesses.  Entirely advisory — a dead
        master or home server drops the batch on the floor; a later read
        simply re-nominates.  Runs off the critical path: no gread ever
        waits on it."""
        rec = self.sim.spans
        try:
            while self._prefetch_queue:
                t0 = self.sim.now
                depth = self.config.prefetch_depth
                batch = self._prefetch_queue[:depth]
                del self._prefetch_queue[:len(batch)]
                entries = [(g, self._touch_counts.get(g, 1)) for g in batch]
                if len(entries) < depth:
                    # Speculative top-up: predicted-next addresses ride along
                    # in the same request for free.
                    for g in self._predictor.predict():
                        if len(entries) >= depth:
                            break
                        if g in self._prefetch_requested:
                            continue
                        meta = self._cached_meta(g)
                        if meta is None or meta.cached:
                            continue
                        if not self._prefetch_safe(meta):
                            continue
                        self._prefetch_requested.add(g)
                        entries.append((g, self._touch_counts.get(g, 1)))
                if self._num_shards > 1:
                    groups: Dict[int, list] = {}
                    for entry in entries:
                        groups.setdefault(self._resolve_shard(entry[0]),
                                          []).append(entry)
                else:
                    groups = {0: entries}
                updates = []
                sent = 0
                for shard, group in groups.items():
                    try:
                        part = yield from self._master_call(
                            "prefetch",
                            {"entries": group, "client": self.name},
                            shard=shard)
                    except (MasterUnavailableError, NotMyShard, RpcError):
                        for g, _reads in group:
                            self._prefetch_requested.discard(g)
                        continue
                    updates.extend(part)
                    sent += len(group)
                if not sent:
                    return
                self.m_prefetches.add(sent)
                promoted = 0
                for gaddr, cached, cache_offset in updates:
                    meta = self._cached_meta(gaddr)
                    if meta is not None:
                        self._store_meta(meta.with_cache(cached, cache_offset))
                    if cached:
                        promoted += 1
                    else:
                        # Promotion declined (cache full / server down):
                        # eligible to nominate again later.
                        self._prefetch_requested.discard(gaddr)
                if rec is not None:
                    rec.record(self.name, "phase.prefetch", t0,
                               requested=len(entries), promoted=promoted)
                if self.sim.tracer is not None:
                    trace(self.sim, "prefetch", "batch prefetched",
                          client=self.name, requested=len(entries),
                          promoted=promoted)
        finally:
            self._prefetch_inflight = False
