"""Typed client error taxonomy.

Every failure a :class:`~repro.core.client.GengarClient` verb can surface is
a :class:`ClientError`, split into two actionable branches:

* :class:`FatalError` — usage errors and protocol states a retry cannot
  fix (out-of-bounds access, protection faults, metadata thrash with
  degradation disabled).  Callers should propagate these.
* :class:`RetryableError` — transient conditions where retrying (possibly
  after re-attaching to a restarted server) may succeed.  The client's
  built-in retry loop (see :class:`~repro.core.client.RetryPolicy`) handles
  these automatically when ``retry_max_attempts > 1``.

:class:`DeadlineExceededError` sits outside both branches: it is the typed
signal that the per-op deadline elapsed, raised *instead of* blocking
forever.  It is deliberately not retryable — the caller's time budget is
already spent.

These live in their own module (rather than ``client.py``) because both the
client and the consistency layer raise them; ``client.py`` re-exports every
name for backward compatibility.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ClientError(Exception):
    """Invalid client operation or unrecoverable protocol failure."""


class BatchError(ClientError):
    """One or more items of a batched operation failed.

    Raised by ``gwrite_many`` (and friends) only after *every* item has
    completed, so the caller knows exactly which items landed.  Carries
    ``failures``: a list of ``(index, exception)`` pairs in argument order,
    where each exception is the item's original typed error.  Deliberately
    not a :class:`RetryableError` even when every member failure is — the
    per-item retry budget was already spent inside the batch; callers
    decide per index whether to reissue.
    """

    def __init__(self, what: str, failures: List[Tuple[int, Exception]]):
        self.failures = failures
        summary = ", ".join(
            f"[{idx}] {type(exc).__name__}: {exc}" for idx, exc in failures[:4]
        )
        if len(failures) > 4:
            summary += f", ... ({len(failures) - 4} more)"
        super().__init__(
            f"{what}: {len(failures)} of the batch's items failed: {summary}"
        )


class FatalError(ClientError):
    """A failure no retry can fix: usage error, protection fault, corrupt
    protocol state."""


class RingSaturatedError(FatalError):
    """A control-plane attach would overcommit a fixed-depth RPC receive
    pool (``rpc_ring_slots`` set to an integer, one posted receive per
    attached QP already claims every slot).

    Fatal rather than retryable: with elastic pools disabled the ring
    cannot grow, so admitting the QP would leave the fleet one receive
    short and wedge under concurrent load — the classic silent >=16-client
    deadlock this error replaces.  The fixes are config-side: leave
    ``rpc_ring_slots="auto"`` (the default) or raise the fixed depth
    above the planned QP fanout.
    """


class RetryableError(ClientError):
    """A transient failure: retrying the operation (possibly after a
    re-attach) may succeed."""


class ServerUnavailableError(RetryableError):
    """A verb or RPC hit a dead or unreachable server (``RETRY_EXCEEDED``).

    Carries the server id so the retry loop knows which server to
    re-attach once it comes back.
    """

    def __init__(self, message: str, server_id: Optional[int] = None):
        super().__init__(message)
        self.server_id = server_id


class StaleRingError(RetryableError):
    """A proxy-ring access faulted because the ring was torn down by a
    server restart (its MR was deregistered at crash time).

    Distinct from :class:`ServerUnavailableError`: the server is *alive*
    again, but this client's session state is gone and must be rebuilt via
    :meth:`~repro.core.client.GengarClient.reattach_server`.
    """

    def __init__(self, message: str, server_id: Optional[int] = None):
        super().__init__(message)
        self.server_id = server_id


class MasterUnavailableError(RetryableError):
    """A control RPC failed because the master is down or restarting.

    Retryable: the retry loop backs off and, with ``auto_reattach``
    enabled, re-attaches to the recovered master keeping the client's uid
    and fencing epoch, so leases and lock ownership survive the failover.
    """


class StaleTermError(RetryableError):
    """A master reply carried a term older than one this client has
    already observed — the replying master was deposed by a successor
    (split-brain fencing at the control-plane level).

    Retryable: the result was *discarded*, never applied, so the op can
    safely be reissued; with ``auto_reattach`` the retry loop re-attaches
    first, which finds the current-term master.  Carries both terms for
    diagnostics.
    """

    def __init__(self, message: str, reply_term: int = 0, known_term: int = 0):
        super().__init__(message)
        self.reply_term = reply_term
        self.known_term = known_term


class NotMyShard(RetryableError):
    """A control RPC landed on a master shard that does not own the
    object (the client's cached shard map is stale — the pool was
    resharded, or a routing bug sent the op astray).

    Retryable: the owning shard rejected the op *before* applying it, so
    the client invalidates its shard map, re-resolves ownership at the
    current map epoch, and reissues against the right shard.  Carries the
    rejecting shard, the owner it named (if known), and the map epoch the
    reply was stamped with so the client can fast-forward without a full
    re-attach.
    """

    def __init__(self, message: str, shard_id: int = 0,
                 owner_shard: Optional[int] = None, map_epoch: int = 0):
        super().__init__(message)
        self.shard_id = shard_id
        self.owner_shard = owner_shard
        self.map_epoch = map_epoch


class PartitionSuspected(RetryableError):
    """Control-plane traffic is failing in a pattern that looks like a
    network partition (repeated heartbeat failures), not a crashed master.

    Retryable: partitions heal; the retry loop backs off and reissues.
    Distinct from :class:`MasterUnavailableError` so callers (and the
    chaos harness) can tell "the master process is gone" apart from "the
    path to the master is gone" — the failure detector's verdict, not a
    single RPC's.
    """


class FencedError(ClientError):
    """This client's lease expired and its fencing epoch was retired.

    Deliberately *not* retryable: the master may already have recovered
    this client's locks and another client may hold them — blindly
    retrying the same lock op would be exactly the zombie write the fence
    exists to stop.  The only recovery is
    :meth:`~repro.core.client.GengarClient.reattach_master`, which rejoins
    under a fresh epoch.
    """


class LeaseExpiredError(FencedError, RetryableError):
    """This client's lease deadline lapsed *locally* — renewals stopped
    flowing (master unreachable, or an op parked in a retry backoff longer
    than the lease) — but the master has not been heard to fence us.

    A :class:`FencedError` (the op was refused for exactly the zombie-
    write reason, and fail-fast callers treat it as such) that is *also*
    :class:`RetryableError`: the safe recovery is to re-attach first
    (re-establishing a live lease, adopting a bumped epoch if the master
    *did* fence us meanwhile) and only then retry.  The retry loop does
    exactly that, so a long seeded backoff no longer turns into a
    terminal self-fence while the master was merely unreachable.
    """


class DeadlineExceededError(ClientError):
    """The per-op deadline elapsed before the verb completed.

    When raised from the deadline watchdog (rather than between retry
    attempts), the abandoned attempt keeps running in the background and
    its side effects — including a write landing after all — may still
    occur; the caller only knows the op did not complete *in time*.
    """


class LockTimeoutError(ClientError):
    """A lock acquire found the word held past the configured acquisition
    timeout (``lock_acquire_timeout_ns``).

    Like :class:`DeadlineExceededError`, this sits outside both branches:
    it is a typed, clean outcome — no lock state was changed — but the
    right reaction is policy, not a blind retry (the transaction layer
    consults the holder's wait-die stamp; plain callers back off or give
    up).  Only raised when the timeout knob is set; at the default the
    acquire spins exactly as before.
    """


class TxnError(ClientError):
    """Base class for transaction-layer failures (``repro.txn``)."""


class TxnAbortedError(TxnError):
    """The transaction aborted cleanly *before* its commit point: every
    lock was (or will be) released, no buffered write became visible, and
    the caller may simply re-run the transaction.

    Carries ``reason`` — e.g. ``"fenced"`` (an epoch went stale at commit
    validation), ``"oversize"`` (intent record exceeded a slot), or
    ``"wait-die"`` (see :class:`TxnWaitDieError`).
    """

    def __init__(self, message: str, reason: str = "abort"):
        super().__init__(message)
        self.reason = reason


class TxnWaitDieError(TxnAbortedError):
    """Wait-die contention abort: this (younger) transaction met a lock
    held by an older one and died rather than wait, preventing deadlock.

    The standard recovery is to retry the whole transaction with the
    *same* timestamp so it ages and eventually wins; the txn manager's
    ``run`` helper does this automatically.
    """

    def __init__(self, message: str):
        super().__init__(message, reason="wait-die")
