"""The Gengar memory server.

A memory server contributes its NVM to the pool and dedicates slices of its
DRAM to the three server-side mechanisms:

* the **lock table** — one-sided reader/writer lock words,
* the **DRAM cache** — tagged slots holding promoted hot objects,
* per-client **proxy rings** — staging buffers that absorb writes at DRAM
  latency and drain to NVM in the background.

The data plane is entirely one-sided: clients READ the data/cache regions
and WRITE_WITH_IMM into their rings; the only CPU work here is the drain
loop and the (rare) promote/demote RPC handlers driven by the master.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rdma.qp import QueuePair

from repro.core.addressing import make_gaddr, offset_of, server_of
from repro.core.allocator import ExtentAllocator, OutOfMemory
from repro.core.config import GengarConfig
from repro.core.errors import RingSaturatedError
from repro.core.layout import DramCarver
from repro.core.protocol import (
    CACHE_TAG_BYTES,
    JOURNAL_HEADER_BYTES,
    JOURNAL_OP_TERM,
    JOURNAL_RECORD_BYTES,
    PROXY_COMMIT_BYTES,
    PROXY_HEADER_BYTES,
    RingDescriptor,
    ServerDescriptor,
    pack_cache_tag,
    pack_journal_record,
    proxy_commit_ok,
    unpack_journal_record,
    unpack_proxy_header,
)
from repro.rdma.mr import AccessFlags
from repro.rdma.rpc import RpcServer
from repro.sim.trace import trace


class ServerError(Exception):
    """Invalid server-side operation (bad promote/demote, unknown client)."""


@dataclass
class _CacheEntry:
    cache_offset: int  # slot base (tag included) within the cache region
    size: int


@dataclass
class _ClientRing:
    ring_base: int  # DRAM offset of the ring window
    mr: object  # ring MemoryRegion
    counter_offset: int  # region-relative offset of the drained counter
    drained: int = 0
    client: str = ""  # owning client's name (span/trace attribution)


#: RPC buffer size for control traffic (attach/promote/demote); ring depth
#: comes from GengarConfig (``rpc_initial_ring_slots``).
_RPC_BUFFER_SIZE = 4096


class ReadCombineGroup:
    """Shared token for adjacent reads rung with one doorbell.

    Built by the client when it detects that several RDMA_READ WRs in one
    ``post_send_many`` batch target contiguous ranges of the same remote
    region; attached to each member WR (``wr.combine``).  The target's
    :class:`ReadCombiner` uses it to service the whole group with a single
    device transfer — one per-transfer setup charge instead of one per
    member, which is where the Optane read-combining win comes from.
    """

    __slots__ = ("rkey", "base_offset", "total_length", "members",
                 "_event", "_data")

    def __init__(self, rkey: int, base_offset: int, total_length: int,
                 members: int):
        self.rkey = rkey
        self.base_offset = base_offset
        self.total_length = total_length
        self.members = members
        self._event = None  # in-flight combined transfer (set by the first)
        self._data = None  # the combined bytes, once fetched

    def slice_for(self, wr) -> bytes:
        lo = wr.remote_offset - self.base_offset
        return self._data[lo : lo + wr.length]


class ReadCombiner:
    """Target-side service for :class:`ReadCombineGroup` tokens.

    Installed on the server's endpoint (``endpoint.read_combiner``) and
    consulted by the QP machinery for RDMA_READ WRs carrying a group: the
    first member to arrive performs one device read spanning the whole
    group and publishes the bytes on the token; members arriving while that
    transfer is in flight park on its event; members arriving after slice
    immediately.  Per-member wire costs (request, response) are unchanged —
    only the device transfer is coalesced.

    Crash safety: a member whose endpoint died before its target phase
    never reaches the combiner (it completes RETRY_EXCEEDED), and a member
    parked on the in-flight event always wakes because the device model
    completes transfers regardless of endpoint liveness — no wedge.
    """

    def __init__(self, server: "MemoryServer"):
        self.server = server
        m = server.sim.metrics
        name = server.node.name
        self.combined_reads = m.counter(f"{name}.combine.transfers")
        self.combined_members = m.counter(f"{name}.combine.members")
        self.combined_bytes = m.counter(f"{name}.combine.bytes")

    def fetch(self, mr, wr) -> Generator[Any, Any, bytes]:
        group: ReadCombineGroup = wr.combine
        if group._data is not None:
            return group.slice_for(wr)
        if group._event is not None:
            yield group._event
            return group.slice_for(wr)
        sim = self.server.sim
        group._event = sim.event(name=f"{self.server.node.name}.combine")
        rec = sim.spans
        t0 = sim.now if rec is not None else 0
        data = yield from mr.read(group.base_offset, group.total_length,
                                  need=AccessFlags.REMOTE_READ)
        group._data = data
        group._event.succeed()
        self.combined_reads.add()
        self.combined_members.add(group.members)
        self.combined_bytes.add(group.total_length)
        if rec is not None:
            rec.record(self.server.node.name, "srv.read_combine", t0,
                       bytes=group.total_length, members=group.members)
        if sim.tracer is not None:
            trace(sim, "read", "combined device read",
                  server=self.server.node.name,
                  bytes=group.total_length, members=group.members)
        return group.slice_for(wr)


class MemoryServer:
    """Runtime state of one memory server."""

    def __init__(self, node: "Node", server_id: int, config: GengarConfig):
        if config.data_in_dram:
            data_device = node.dram
        else:
            if node.nvm is None:
                raise ServerError(f"node {node.name} has no NVM to contribute")
            data_device = node.nvm
        self.node = node
        self.sim = node.sim
        self.server_id = server_id
        self.config = config
        self.data_device = data_device

        carver = DramCarver(node.dram)
        self._carver = carver

        # Control plane.  With rpc_ring_slots="auto" the receive/response
        # rings form an elastic shared pool that grows with attached QPs,
        # carving further DRAM chunks on demand.
        rpc_slots = config.rpc_initial_ring_slots
        rpc_base = carver.carve(2 * rpc_slots * _RPC_BUFFER_SIZE, "rpc")
        self.rpc = RpcServer(
            node.endpoint, node.dram, base=rpc_base,
            num_buffers=rpc_slots, buffer_size=_RPC_BUFFER_SIZE,
            name=f"{node.name}.rpc",
            grow_cb=(lambda nbytes: carver.carve(nbytes, "rpc-grow"))
            if config.rpc_elastic else None,
            credits=config.rpc_credits,
        )
        self.rpc.register("promote", self._handle_promote)
        self.rpc.register("demote", self._handle_demote)
        self.rpc.register("attach", self._handle_attach)
        self.rpc.register("clear_lock", self._handle_clear_lock)
        self.rpc.register("scrub", self._handle_scrub)
        self.rpc.register("clear_lock_if_owner", self._handle_clear_lock_if_owner)
        self.rpc.register("journal_append", self._handle_journal_append)
        self.rpc.register("journal_read", self._handle_journal_read)
        self.rpc.register("retire_ring", self._handle_retire_ring)
        self.rpc.register("retire_rings_except", self._handle_retire_rings_except)
        self.rpc.register("clear_lock_if_orphan", self._handle_clear_lock_if_orphan)
        self.rpc.register("txn_intent_put", self._handle_txn_intent_put)
        self.rpc.register("txn_intent_clear", self._handle_txn_intent_clear)
        self.rpc.register("txn_intent_scan", self._handle_txn_intent_scan)
        self.rpc.register("txn_apply", self._handle_txn_apply)
        self.rpc.register("txn_desc", self._handle_txn_desc)

        # Lock table.
        lock_bytes = config.lock_table_entries * 8
        lock_base = carver.carve(lock_bytes, "locks")
        self.lock_mr = node.endpoint.register_mr(
            node.dram, lock_base, lock_bytes,
            access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ | AccessFlags.REMOTE_ATOMIC,
            name=f"{node.name}.locks",
        )

        # DRAM cache. When data itself lives in DRAM the cache is pointless;
        # the config presets disable it there, but guard anyway.
        self.cache_enabled = config.enable_cache and not config.data_in_dram
        if self.cache_enabled:
            cache_base = carver.carve(config.cache_capacity, "cache")
            self.cache_mr = node.endpoint.register_mr(
                node.dram, cache_base, config.cache_capacity,
                access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE,
                name=f"{node.name}.cache",
            )
            self.cache_alloc = ExtentAllocator(config.cache_capacity)
        else:
            self.cache_mr = None
            self.cache_alloc = None

        # Optional persistent metadata journal at the tail of NVM.
        if config.metadata_journal:
            journal_span = (JOURNAL_HEADER_BYTES
                            + config.journal_entries * JOURNAL_RECORD_BYTES)
            self.journal_base = data_device.capacity - journal_span
            self.data_capacity = self.journal_base
            self._journal_count = 0
            #: Highest master term this server has accepted (``master_terms``):
            #: appends below it are rejected, which is what actually fences a
            #: deposed master out of the pool's write path.  Volatile, but
            #: re-learned from TERM records on the first post-restart
            #: journal_read — which every recovering master issues before
            #: claiming.  One scalar stays correct under control-plane
            #: sharding because a server is owned by exactly one shard at a
            #: time and a reshard handover raises the adopting master's term
            #: to at least the exporter's (``Master.adopt_server``) — so the
            #: floor never has to distinguish which shard set it.
            self._term_max = 0
        else:
            self.journal_base = None
            self.data_capacity = data_device.capacity

        # Optional durable txn-intent region, carved below the journal tail
        # (intents must survive a server power cycle so the master can roll
        # committed transactions forward after any crash combination).  Each
        # fixed-size slot holds one pickled intent record behind an 8-byte
        # length header; length 0 marks the slot free.
        if config.enable_txn:
            intent_span = config.txn_intent_entries * config.txn_intent_slot_bytes
            self.intent_base = self.data_capacity - intent_span
            self.data_capacity = self.intent_base
            #: Volatile txn-id -> slot map; ``None`` forces a rebuild from
            #: the NVM headers (first use after construction or a restart).
            self._intent_index: Dict[str, int] | None = None
        else:
            self.intent_base = None
            self._intent_index = None

        # Advisory wait-die stamp table (``enable_txn``): one 8-byte stamp
        # per lock-table entry, written one-sided by lock holders and read
        # one-sided by contenders.  Never authoritative — a zero (unknown)
        # stamp always resolves to "wait", which is safe.
        if config.enable_txn:
            stamp_bytes = config.lock_table_entries * 8
            stamp_base = carver.carve(stamp_bytes, "txnstamps")
            self.stamp_mr = node.endpoint.register_mr(
                node.dram, stamp_base, stamp_bytes,
                access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE,
                name=f"{node.name}.txnstamps",
            )
        else:
            self.stamp_mr = None

        # Data region: the contributed device minus the journal tail.
        self.data_mr = node.endpoint.register_mr(
            data_device, 0, data_device.capacity,
            access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE,
            name=f"{node.name}.data",
        )

        #: Locally cached objects: gaddr -> entry (the drain loop consults it).
        self.cached: Dict[int, _CacheEntry] = {}
        self._rings: Dict[str, _ClientRing] = {}
        #: DRAM spans carved for each client's ring, reused across
        #: crash/re-attach cycles so repeated recoveries don't leak DRAM.
        self._ring_spans: Dict[str, int] = {}
        self._drain_loops: list = []  # (process, qp) pairs
        self._drain_proc_by_client: Dict[str, object] = {}
        self._drain_qps: Dict[str, "QueuePair"] = {}
        #: Fault injection: when set, drain loops park on this event.
        self._drain_gate = None
        self.crashes = 0
        #: Per-object applied-write sequence, bumped by every drained frame.
        #: Promotion copies race drains: a frame applied while the copy is
        #: in flight (entry not yet published) reaches NVM but not the slot,
        #: so _handle_promote redoes the copy until a full pass sees no
        #: concurrent apply.  Entries are pruned at scrub (free) time.
        self._applied_seq: Dict[int, int] = {}

        #: Adjacent reads in one doorbell batch collapse into single device
        #: transfers; the QP machinery finds the combiner via the endpoint.
        self.read_combiner = ReadCombiner(self)
        node.endpoint.read_combiner = self.read_combiner

        m = self.sim.metrics
        self.drained_writes = m.counter(f"{node.name}.proxy.drained")
        self.drained_bytes = m.counter(f"{node.name}.proxy.drained_bytes")
        self.ring_occupancy = m.level(f"{node.name}.proxy.occupancy")
        self.promotions = m.counter(f"{node.name}.cache.promotions")
        self.demotions = m.counter(f"{node.name}.cache.demotions")
        self.torn_skipped = m.counter(f"{node.name}.proxy.torn_skipped")
        self.txn_intents = m.counter(f"{node.name}.txn.intents")
        self.txn_applied = m.counter(f"{node.name}.txn.applied")

    # ------------------------------------------------------------------
    def descriptor(self) -> ServerDescriptor:
        """What clients need to reach this server one-sided."""
        return ServerDescriptor(
            server_id=self.server_id,
            node_name=self.node.name,
            data_rkey=self.data_mr.rkey,
            cache_rkey=self.cache_mr.rkey if self.cache_mr else 0,
            lock_rkey=self.lock_mr.rkey,
        )

    def serve_control(self, qp: "QueuePair", peer: Optional[str] = None) -> None:
        """Start serving RPC on a control connection (master or client).

        ``peer`` (the remote's node name) enables slot reclamation for that
        connection when the peer is later fenced or crashes.

        With elastic pools disabled (``rpc_ring_slots`` fixed), an attach
        that would claim the last free receive slot is rejected up front:
        a fully-committed fixed ring wedges silently under concurrent
        load, and a typed error at attach time beats a deadlock mid-run.
        """
        if self.rpc.would_overcommit():
            raise RingSaturatedError(
                f"{self.node.name}: fixed RPC receive pool "
                f"({self.rpc.pool_stats()['capacity']} slots) cannot admit "
                f"another control QP; use rpc_ring_slots='auto' or raise "
                f"the fixed depth")
        self.rpc.serve(qp, peer=peer)

    # ------------------------------------------------------------------
    # RPC handlers (invoked by the master / clients)
    # ------------------------------------------------------------------
    def _handle_promote(self, request: dict) -> Generator[Any, Any, int]:
        """Copy an object from NVM into a tagged DRAM cache slot.

        Returns the slot's cache-region offset.  Idempotent: promoting an
        already-cached object returns the existing slot.
        """
        if not self.cache_enabled:
            raise ServerError("cache disabled on this server")
        gaddr, size = request["gaddr"], request["size"]
        existing = self.cached.get(gaddr)
        if existing is not None:
            return existing.cache_offset
        slot_offset = self.cache_alloc.alloc(CACHE_TAG_BYTES + size)  # may raise OutOfMemory
        nvm_offset = offset_of(gaddr)
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        yield from self.node.cpu_work()
        # Publish locally *after* the copy so the drain loop never updates a
        # half-initialized slot that it then gets overwritten by stale data.
        # The flip side: a frame drained *during* the copy reaches NVM only
        # (the entry is unpublished), so the copy would install pre-drain
        # bytes under a valid tag — permanently stale.  Redo the copy until
        # one full pass races no concurrent apply to this object.
        while True:
            seq_before = self._applied_seq.get(gaddr, 0)
            data = yield from self.data_device.read(nvm_offset, size)
            yield from self.cache_mr.write(slot_offset, pack_cache_tag(gaddr) + data)
            if self._applied_seq.get(gaddr, 0) == seq_before:
                break
        self.cached[gaddr] = _CacheEntry(cache_offset=slot_offset, size=size)
        self.promotions.add()
        if rec is not None:
            rec.record(self.node.name, "srv.promote_copy", t0, bytes=size)
        if self.sim.tracer is not None:
            trace(self.sim, "cache", "promoted", server=self.node.name,
                  gaddr=hex(gaddr), bytes=size)
        return slot_offset

    def _handle_demote(self, request: dict) -> Generator[Any, Any, bool]:
        """Drop a cached object: invalidate its tag, free the slot.

        The cache is clean by construction (every write path updates NVM as
        well), so no writeback is needed.
        """
        gaddr = request["gaddr"]
        entry = self.cached.pop(gaddr, None)
        if entry is None:
            return False  # already demoted (idempotent)
        yield from self.node.cpu_work()
        # Kill the tag first so stale clients fail self-verification.
        yield from self.cache_mr.write(entry.cache_offset, pack_cache_tag(0, flags=0))
        self.cache_alloc.free(entry.cache_offset)
        self.demotions.add()
        if self.sim.tracer is not None:
            trace(self.sim, "cache", "demoted", server=self.node.name,
                  gaddr=hex(gaddr))
        return True

    def _handle_attach(self, request: dict) -> Generator[Any, Any, RingDescriptor]:
        """Set up a client's private proxy ring and start its drain loop."""
        client_name = request["client"]
        if client_name in self._rings:
            raise ServerError(f"client {client_name!r} already attached")
        # A previous incarnation's drain loop (pre-crash) must have fully
        # exited before a new one shares the QP's completion stream, or the
        # two would steal each other's doorbells.
        old_proc = self._drain_proc_by_client.get(client_name)
        if old_proc is not None and old_proc.is_alive:
            yield old_proc
        qp = self._find_qp(request["qp_num"])
        slots = self.config.proxy_ring_slots
        slot_size = self.config.proxy_slot_size
        span = slots * slot_size + 64  # slots + drained counter word
        # Reuse the span carved for this client's previous incarnation (its
        # MR was deregistered at crash time); repeated crash/recover cycles
        # must not consume fresh DRAM.
        ring_base = self._ring_spans.get(client_name)
        if ring_base is None:
            ring_base = self._carver.carve(span, f"ring:{client_name}")
            self._ring_spans[client_name] = ring_base
        mr = self.node.endpoint.register_mr(
            self.node.dram, ring_base, span,
            access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE,
            name=f"{self.node.name}.ring.{client_name}",
        )
        counter_offset = slots * slot_size
        mr.write_u64(counter_offset, 0)
        ring = _ClientRing(ring_base=ring_base, mr=mr,
                           counter_offset=counter_offset, client=client_name)
        self._rings[client_name] = ring
        # Pre-post one doorbell recv per slot; the drain loop reposts.
        for _ in range(slots):
            qp.post_recv(mr, offset=counter_offset, length=0)
        proc = self.sim.spawn(
            self._drain_loop(qp, ring), name=f"{self.node.name}.drain.{client_name}"
        )
        self._drain_loops.append((proc, qp))
        self._drain_proc_by_client[client_name] = proc
        self._drain_qps[client_name] = qp
        yield from self.node.cpu_work()
        return RingDescriptor(
            ring_rkey=mr.rkey, slots=slots, slot_size=slot_size,
            counter_offset=counter_offset,
        )

    def _handle_scrub(self, request: dict) -> Generator[Any, Any, bool]:
        """Zero a freed data extent so reallocations read as fresh memory.

        Gengar gives gmalloc calloc semantics; the cost is paid off the
        allocation critical path, at free time.
        """
        offset, size = request["offset"], request["size"]
        gaddr = make_gaddr(self.server_id, offset)
        self._applied_seq.pop(gaddr, None)
        # A scrub means the object is dead; a cache slot must not outlive
        # it.  Normally the master demotes before scrubbing, but a promote
        # that raced the free can publish a slot after that demote check —
        # and its gaddr-keyed tag would validate for the next allocation at
        # this extent.  Kill it here, where object death is authoritative.
        entry = self.cached.pop(gaddr, None)
        if entry is not None:
            yield from self.cache_mr.write(
                entry.cache_offset, pack_cache_tag(0, flags=0))
            self.cache_alloc.free(entry.cache_offset)
            self.demotions.add()
        yield from self.node.cpu_work()
        zeros = bytes(min(size, 64 * 1024))
        pos = 0
        while pos < size:
            chunk = min(len(zeros), size - pos)
            yield from self.data_device.write(offset + pos, zeros[:chunk])
            pos += chunk
        return True

    def _handle_journal_append(self, request: dict) -> Generator[Any, Any, int]:
        """Durably journal one allocation/free into NVM.

        Write-ahead ordering: the record lands before the count header
        advances, so a crash between the two leaves the record invisible
        rather than half-valid.  Returns the new record count.
        """
        if self.journal_base is None:
            raise ServerError("metadata journal disabled on this server")
        term = request.get("term")
        if term is not None:
            # Term fencing, checked before anything else (a full journal
            # must not mask a deposed master): adopt monotonically, reject
            # anything below the adopted max.  The exact message is a
            # cross-module contract — the master maps it to deposition, the
            # client to StaleTermError.
            if term < self._term_max:
                if self.sim.tracer is not None:
                    trace(self.sim, "term", "journal append rejected",
                          server=self.node.name, term=term,
                          current=self._term_max)
                raise ServerError(
                    f"stale master term {term} (current {self._term_max})")
            self._term_max = term
        if self._journal_count >= self.config.journal_entries:
            raise ServerError("metadata journal full")
        record = pack_journal_record(
            request["op"], request["lock_idx"], request["gaddr"],
            request["size"], request.get("req_id", 0),
        )
        yield from self.node.cpu_work()
        offset = (self.journal_base + JOURNAL_HEADER_BYTES
                  + self._journal_count * JOURNAL_RECORD_BYTES)
        yield from self.data_device.write(offset, record)
        self._journal_count += 1
        yield from self.data_device.write(
            self.journal_base, self._journal_count.to_bytes(8, "little")
        )
        return self._journal_count

    def _handle_journal_read(self, request: dict) -> Generator[Any, Any, list]:
        """Read the whole journal back (recovery).  Returns decoded records.

        Reads the persisted count header rather than trusting volatile
        state, so it works on a freshly restarted server process.
        """
        if self.journal_base is None:
            raise ServerError("metadata journal disabled on this server")
        raw_count = yield from self.data_device.read(self.journal_base, 8)
        count = int.from_bytes(raw_count, "little")
        self._journal_count = count
        if count == 0:
            return []
        raw = yield from self.data_device.read(
            self.journal_base + JOURNAL_HEADER_BYTES,
            count * JOURNAL_RECORD_BYTES,
        )
        records = []
        for i in range(count):
            op, lock_idx, gaddr, size, req_id = unpack_journal_record(
                raw[i * JOURNAL_RECORD_BYTES:(i + 1) * JOURNAL_RECORD_BYTES]
            )
            if op == JOURNAL_OP_TERM:
                # Re-learn the adopted term across a server restart: the
                # recovering master always reads before claiming, so this
                # runs before any new append could be checked.
                self._term_max = max(self._term_max, gaddr)
            records.append({"op": op, "lock_idx": lock_idx,
                            "gaddr": gaddr, "size": size, "req_id": req_id})
        return records

    def _handle_clear_lock(self, request: dict) -> Generator[Any, Any, int]:
        """Admin path: forcibly zero a lock word (recovery after a client
        failure).  Returns the prior word so operators can audit what was
        abandoned.

        The read and the clear are one critical section under the
        endpoint's atomic gate — the same gate inbound NIC atomics take —
        so the zero is conditional on the observed word (CAS semantics).
        Without the gate, a release + fresh acquire landing between the
        read and the timed write would be wiped by a clear that was aimed
        at the *previous* holder's word.
        """
        lock_idx = request["lock_idx"]
        yield from self.node.cpu_work()
        with (yield self.node.endpoint.atomic_gate.request()):
            prior = self.lock_mr.read_u64(lock_idx * 8)
            yield from self.lock_mr.write(lock_idx * 8, (0).to_bytes(8, "little"))
        return prior

    def _handle_clear_lock_if_owner(self, request: dict) -> Generator[Any, Any, bool]:
        """Recovery: clear the writer bits of a lock word iff the embedded
        owner id (and, when given, the fencing epoch) matches.  Serialized
        against inbound NIC atomics through the endpoint's atomic gate, so a
        concurrent CAS/FAA never interleaves with the read-modify-write.

        The epoch condition is what makes lease recovery safe to race with
        a re-attach: a client that rejoined under a fresh epoch (and
        re-acquired the lock) is never hit by a clear aimed at its dead
        incarnation.
        """
        from repro.core.protocol import (
            lock_epoch, lock_is_write_locked, lock_owner, write_lock_word)

        lock_idx, owner = request["lock_idx"], request["owner"]
        epoch = request.get("epoch")
        yield from self.node.cpu_work()
        with (yield self.node.endpoint.atomic_gate.request()):
            word = self.lock_mr.read_u64(lock_idx * 8)
            if not (lock_is_write_locked(word) and lock_owner(word) == owner):
                return False
            if epoch is not None and lock_epoch(word) != epoch:
                return False
            # Preserve in-flight reader increments; drop only the writer part.
            new = word - write_lock_word(owner, lock_epoch(word))
            yield from self.lock_mr.write(lock_idx * 8, new.to_bytes(8, "little"))
        return True

    def _handle_clear_lock_if_orphan(self, request: dict) -> Generator[Any, Any, int]:
        """Post-failover recovery: clear a write lock iff its embedded owner
        uid is *not* in the given set of known (re-attached) client uids.

        A restarted master lost its lease table; after the re-attach grace
        period, any lock whose owner never re-registered belongs to a client
        that died with the old master.  Returns the orphan's uid (0 if the
        word was free or owned by a known client).
        """
        from repro.core.protocol import (
            lock_epoch, lock_is_write_locked, lock_owner, write_lock_word)

        lock_idx = request["lock_idx"]
        known = set(request["known"])
        yield from self.node.cpu_work()
        with (yield self.node.endpoint.atomic_gate.request()):
            word = self.lock_mr.read_u64(lock_idx * 8)
            if not lock_is_write_locked(word):
                return 0
            owner = lock_owner(word)
            if owner in known:
                return 0
            new = word - write_lock_word(owner, lock_epoch(word))
            yield from self.lock_mr.write(lock_idx * 8, new.to_bytes(8, "little"))
        return owner

    # ------------------------------------------------------------------
    # Transaction intents + deterministic apply (``enable_txn``)
    # ------------------------------------------------------------------
    def _intent_offset(self, slot: int) -> int:
        return self.intent_base + slot * self.config.txn_intent_slot_bytes

    def _require_intents(self) -> None:
        if self.intent_base is None:
            raise ServerError("txn intents disabled on this server")

    def _intent_load_index(self) -> Generator[Any, Any, None]:
        """Rebuild the volatile txn-id -> slot map from the NVM headers.

        Runs on first use after construction or a server restart, which is
        what makes the intent region authoritative across crashes: the map
        is a cache of what NVM says, never the other way around.
        """
        index: Dict[str, int] = {}
        for slot in range(self.config.txn_intent_entries):
            base = self._intent_offset(slot)
            raw = yield from self.data_device.read(base, 8)
            length = int.from_bytes(raw, "little")
            if not length:
                continue
            blob = yield from self.data_device.read(base + 8, length)
            index[pickle.loads(blob)["txn"]] = slot
        if self._intent_index:
            # A concurrent first-use already rebuilt (and may have taken
            # reservations since): NVM truth for txns we did not know,
            # but never clobber the live map with this stale snapshot.
            for txn_id, slot in index.items():
                self._intent_index.setdefault(txn_id, slot)
        else:
            self._intent_index = index

    def _handle_txn_intent_put(self, request: dict) -> Generator[Any, Any, int]:
        """Durably persist one transaction's intent record — the commit
        point of the whole protocol.

        Write-ahead ordering like the journal: the pickled record lands
        before the 8-byte length header, so a crash between the two leaves
        the slot free rather than half-valid.  Idempotent per txn id (a
        retried commit overwrites its own slot).  Returns the slot index.
        """
        self._require_intents()
        record = {
            "txn": request["txn"],
            "owner": request["owner"],
            "epoch": request["epoch"],
            "writes": request["writes"],
        }
        blob = pickle.dumps(record)
        if len(blob) > self.config.txn_intent_slot_bytes - 8:
            raise ServerError(
                f"txn intent record too large ({len(blob)} bytes > slot "
                f"capacity {self.config.txn_intent_slot_bytes - 8})")
        yield from self.node.cpu_work()
        if self._intent_index is None:
            yield from self._intent_load_index()
        slot = self._intent_index.get(record["txn"])
        reserved = slot is None
        if reserved:
            used = set(self._intent_index.values())
            slot = next((s for s in range(self.config.txn_intent_entries)
                         if s not in used), None)
            if slot is None:
                raise ServerError("txn intent region full")
            # Reserve in the volatile index BEFORE yielding to NVM: two
            # commits landing concurrently would otherwise both see the
            # slot as free and the second would overwrite the first's
            # durable record — whose later clear then destroys it.
            self._intent_index[record["txn"]] = slot
        base = self._intent_offset(slot)
        try:
            yield from self.data_device.write(base + 8, blob)
            yield from self.data_device.write(
                base, len(blob).to_bytes(8, "little"))
        except BaseException:
            if reserved:  # nothing durable yet: return the slot
                self._intent_index.pop(record["txn"], None)
            raise
        self.txn_intents.add()
        if self.sim.tracer is not None:
            trace(self.sim, "txn", "intent persisted", server=self.node.name,
                  txn=record["txn"], writes=len(record["writes"]))
        return slot

    def _handle_txn_intent_clear(self, request: dict) -> Generator[Any, Any, bool]:
        """Retire a transaction's intent record (post-apply, or rollback of
        a record that lost its race with recovery).  Idempotent."""
        self._require_intents()
        yield from self.node.cpu_work()
        if self._intent_index is None:
            yield from self._intent_load_index()
        slot = self._intent_index.pop(request["txn"], None)
        if slot is None:
            return False
        yield from self.data_device.write(
            self._intent_offset(slot), (0).to_bytes(8, "little"))
        if self.sim.tracer is not None:
            trace(self.sim, "txn", "intent cleared", server=self.node.name,
                  txn=request["txn"])
        return True

    def _handle_txn_intent_scan(self, request: dict) -> Generator[Any, Any, list]:
        """Recovery: return the decoded intent records on this server,
        optionally filtered to a set of owner uids.

        Reads through NVM (rebuilding the volatile index if a restart wiped
        it), so it works on a freshly recovered server process.  Filters:
        ``owners`` keeps only those uids (a lease expiry names the dead
        client); ``exclude`` keeps every uid NOT listed (the post-failover
        orphan sweep names the survivors).
        """
        self._require_intents()
        yield from self.node.cpu_work()
        if self._intent_index is None:
            yield from self._intent_load_index()
        owners = request.get("owners")
        exclude = set(request.get("exclude") or ())
        records = []
        for txn_id in sorted(self._intent_index):
            base = self._intent_offset(self._intent_index[txn_id])
            raw = yield from self.data_device.read(base, 8)
            length = int.from_bytes(raw, "little")
            if not length:
                continue
            blob = yield from self.data_device.read(base + 8, length)
            record = pickle.loads(blob)
            if owners is not None and record["owner"] not in owners:
                continue
            if record["owner"] in exclude:
                continue
            records.append(record)
        return records

    def _handle_txn_apply(self, request: dict) -> Generator[Any, Any, int]:
        """Apply a committed write-set fragment to this server's NVM home
        (and freshen any cached copy), exactly like a proxy drain.

        Idempotent by construction — the payload bytes are absolute, so a
        zombie client and the recovering master both applying the same
        intent converge on the same final state.
        """
        yield from self.node.cpu_work()
        applied = 0
        for gaddr, obj_offset, payload in request["writes"]:
            if server_of(gaddr) != self.server_id:
                raise ServerError(
                    f"txn_apply for {gaddr:#x} routed to wrong server "
                    f"{self.server_id}")
            payload = bytes(payload)
            yield from self.data_device.write(
                offset_of(gaddr) + obj_offset, payload)
            self._applied_seq[gaddr] = self._applied_seq.get(gaddr, 0) + 1
            entry = self.cached.get(gaddr)
            if entry is not None and obj_offset + len(payload) <= entry.size:
                yield from self.cache_mr.write(
                    entry.cache_offset + CACHE_TAG_BYTES + obj_offset, payload)
            applied += 1
            self.txn_applied.add()
        return applied

    def _handle_txn_desc(self, request: dict) -> Generator[Any, Any, dict]:
        """Lazy per-server txn plumbing: the wait-die stamp table's rkey.

        Kept out of :meth:`descriptor` so the attach reply (protocol bytes)
        is unchanged when transactions are off — clients fetch this once,
        on first transactional contact with the server.
        """
        if self.stamp_mr is None:
            raise ServerError("txn stamps disabled on this server")
        yield from self.node.cpu_work()
        return {"stamp_rkey": self.stamp_mr.rkey}

    def _retire_ring(self, client_name: str) -> bool:
        """Free one client's ring resources (shared by the retire RPCs).

        Deregisters the ring MR (a zombie's one-sided write faults with
        ``REMOTE_ACCESS_ERROR`` instead of landing in an orphaned region)
        and poisons the drain loop *behind* any doorbells already received,
        so staged writes still drain before the loop exits.  The carved
        DRAM span stays parked in ``_ring_spans`` for reuse at re-attach —
        evicting a client must not leak (or re-carve) server DRAM.
        """
        from repro.rdma.wr import Opcode, WorkCompletion

        ring = self._rings.pop(client_name, None)
        if ring is None:
            return False  # never attached, or already retired (idempotent)
        self.node.endpoint.deregister_mr(ring.mr)
        qp = self._drain_qps.pop(client_name, None)
        if qp is not None:
            self._drain_loops = [
                (proc, q) for (proc, q) in self._drain_loops if q is not qp
            ]
            qp.recv_cq.push(WorkCompletion(
                wr_id=0, opcode=Opcode.RECV, context={"poison": True},
            ))
        # Return the dead client's posted RPC receive slot to the shared
        # pool; its serve loop re-arms only when the client re-attaches.
        self.rpc.reclaim_peer(client_name)
        if self.sim.tracer is not None:
            trace(self.sim, "lease", "proxy ring retired",
                  server=self.node.name, client=client_name)
        return True

    def _handle_retire_ring(self, request: dict) -> Generator[Any, Any, bool]:
        """Free a dead/evicted client's ring resources (idempotent)."""
        yield from self.node.cpu_work()
        return self._retire_ring(request["client"])

    def _handle_retire_rings_except(self, request: dict) -> Generator[Any, Any, list]:
        """Post-failover: retire every ring whose owner is *not* in the
        given list of known (re-attached) client names.

        The restarted master lost its lease table, so it cannot name the
        orphans — but it knows exactly who re-attached; everyone else's
        staged-write path must be cut along with their orphaned locks.
        Returns the retired client names (sorted, for determinism).
        """
        known = set(request["known"])
        yield from self.node.cpu_work()
        orphans = sorted(name for name in self._rings if name not in known)
        for name in orphans:
            self._retire_ring(name)
        return orphans

    def _find_qp(self, qp_num: int) -> "QueuePair":
        # The client names the *server-side* QP of its data connection by
        # number (it learned it from qp.remote at connect time), so control
        # and data connections to the same client are never confused.
        for qp in self.node.endpoint.qps:
            if qp.qp_num == qp_num:
                return qp
        raise ServerError(f"no local QP numbered {qp_num}")

    # ------------------------------------------------------------------
    # The proxy drain loop — the heart of the write-latency redesign
    # ------------------------------------------------------------------
    def _drain_loop(self, qp: "QueuePair", ring: _ClientRing) -> Generator[Any, Any, None]:
        """Apply staged writes to NVM (and the DRAM cache) in arrival order.

        The client already got its completion when the payload landed in the
        ring (DRAM latency); this loop pays the NVM cost off the critical
        path.  Per-client FIFO draining preserves program order.
        """
        slot_size = self.config.proxy_slot_size
        while True:
            wc = yield from qp.recv_cq.wait()
            if wc.context.get("poison"):
                return  # server crashed: staged-but-undrained writes are lost
            gate = self._drain_gate
            if gate is not None and not gate.triggered:
                # Injected stall: hold the doorbell until the gate opens.
                # A crash during the stall opens the gate too, so the loop
                # always reaches its poison completion and exits.
                yield gate
            slot = wc.imm_data
            self.ring_occupancy.adjust(+1)
            rec = self.sim.spans
            t0 = self.sim.now if rec is not None else 0
            yield from self.node.cpu_work()  # parse the doorbell + header
            base = slot * slot_size
            header = ring.mr.peek(base, PROXY_HEADER_BYTES)
            gaddr, obj_offset, length = unpack_proxy_header(header)
            if self.config.proxy_commit:
                # Torn-slot detection: this doorbell's payload must carry a
                # commit word binding (seq, header+payload).  A client that
                # died mid-WRITE leaves a frame the commit word no longer
                # covers — skip it (advancing the drained cursor to keep
                # slot/seq alignment) rather than applying garbage to NVM.
                limit = slot_size - PROXY_HEADER_BYTES - PROXY_COMMIT_BYTES
                torn = not 0 <= length <= limit
                if not torn:
                    frame = header + ring.mr.peek(base + PROXY_HEADER_BYTES, length)
                    commit = ring.mr.peek(
                        base + PROXY_HEADER_BYTES + length, PROXY_COMMIT_BYTES)
                    torn = not proxy_commit_ok(commit, ring.drained, frame)
                if torn:
                    self.torn_skipped.add()
                    if self.sim.tracer is not None:
                        trace(self.sim, "fault", "torn slot skipped",
                              server=self.node.name, slot=slot,
                              seq=ring.drained)
                    ring.drained += 1
                    ring.mr.write_u64(ring.counter_offset, ring.drained)
                    qp.post_recv(ring.mr, offset=ring.counter_offset, length=0)
                    self.ring_occupancy.adjust(-1)
                    if rec is not None:
                        rec.record(self.node.name, "srv.drain", t0,
                                   client=ring.client, torn=True)
                    continue
            payload = ring.mr.peek(base + PROXY_HEADER_BYTES, length)

            # Persist to the NVM home first, then — atomically with the
            # write's completion — bump the applied sequence and take a
            # *fresh* cache lookup.  The ordering closes the promotion race
            # both ways: a promote copy that missed this frame's bytes either
            # sees the bump (and redoes its copy) or published its entry
            # before this lookup (and the frame lands in the slot here).
            yield from self.data_device.write(offset_of(gaddr) + obj_offset, payload)
            self._applied_seq[gaddr] = self._applied_seq.get(gaddr, 0) + 1
            entry = self.cached.get(gaddr)
            if entry is not None and obj_offset + length <= entry.size:
                yield from self.cache_mr.write(
                    entry.cache_offset + CACHE_TAG_BYTES + obj_offset, payload
                )

            ring.drained += 1
            if self.sim.tracer is not None:
                trace(self.sim, "proxy", "drained", server=self.node.name,
                      gaddr=hex(gaddr), bytes=length, seq=ring.drained)
            ring.mr.write_u64(ring.counter_offset, ring.drained)
            qp.post_recv(ring.mr, offset=ring.counter_offset, length=0)
            self.drained_writes.add()
            self.drained_bytes.add(length)
            self.ring_occupancy.adjust(-1)
            if rec is not None:
                rec.record(self.node.name, "srv.drain", t0,
                           client=ring.client, bytes=length, torn=False)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail the server process: DRAM contents are lost, NVM survives.

        Models a machine power cycle: the DRAM cache, the proxy rings
        (including any staged-but-undrained writes!), and the lock table all
        vanish; data that reached NVM (everything a client ``gsync``'ed) is
        durable.  In-flight and subsequent verbs targeting this node
        complete with ``RETRY_EXCEEDED``.
        """
        if not self.node.endpoint.alive:
            return
        self.node.endpoint.alive = False
        self.crashes += 1
        # DRAM is gone: invalidate every cached slot's tag and the rings.
        for entry in self.cached.values():
            self.cache_mr.poke(entry.cache_offset,
                               bytes(CACHE_TAG_BYTES + entry.size))
        self.cached.clear()
        if self.cache_alloc is not None:
            self.cache_alloc = ExtentAllocator(self.config.cache_capacity)
        for ring in self._rings.values():
            ring.mr.poke(0, bytes(ring.mr.length))
            # Tear down the ring's RDMA window: a client unaware of the
            # crash faults loudly (REMOTE_ACCESS_ERROR -> StaleRingError)
            # instead of silently writing into an orphaned region.  The
            # carved span itself is reused at re-attach (_ring_spans).
            self.node.endpoint.deregister_mr(ring.mr)
        self._rings.clear()
        # A stalled drain loop must still see its poison completion.
        gate = self._drain_gate
        if gate is not None:
            if not gate.triggered:
                gate.succeed()
            self._drain_gate = None
        # Stop the drain loops with poison completions (a poisoned wait is
        # consumed by the dying loop, so no live completion is ever lost to
        # a stale queue entry).
        from repro.rdma.wr import Opcode, WorkCompletion

        for _proc, qp in self._drain_loops:
            qp.recv_cq.push(WorkCompletion(
                wr_id=0, opcode=Opcode.RECV, context={"poison": True},
            ))
        self._drain_loops.clear()
        self._drain_qps.clear()
        # The lock table lived in DRAM: every lock is implicitly released.
        self.lock_mr.poke(0, bytes(self.lock_mr.length))
        if self.stamp_mr is not None:
            # Wait-die stamps lived in DRAM too; zero = "holder unknown",
            # which contenders resolve to the safe verdict (wait).
            self.stamp_mr.poke(0, bytes(self.stamp_mr.length))
        # The intent *records* are in NVM and survive; only the volatile
        # txn-id -> slot map is lost, so force a rebuild on next use.
        self._intent_index = None
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "server crashed", server=self.node.name)

    def recover(self) -> None:
        """Restart the server process (empty DRAM state, NVM intact).

        Clients must re-attach (:meth:`GengarClient.reattach_server`) to get
        fresh proxy rings, and the master must be told via
        :meth:`Master.on_server_recovered` so the directory drops the lost
        DRAM copies.
        """
        self.node.endpoint.alive = True
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "server recovered", server=self.node.name)

    def stall_drains(self, duration_ns: int) -> None:
        """Freeze every proxy drain loop for ``duration_ns`` (fault
        injection: a wedged drain thread or an NVM write stall).

        Staged writes keep landing in the rings (clients still get DRAM-
        latency acks) but nothing reaches NVM and the drained counter stops
        advancing until the gate reopens.  A stall during a stall is a
        no-op (the first release time stands); a crash releases the gate
        immediately.
        """
        if duration_ns < 1:
            raise ServerError("stall duration must be positive")
        if self._drain_gate is not None and not self._drain_gate.triggered:
            return
        gate = self.sim.event(name=f"{self.node.name}.drain_stall")
        self._drain_gate = gate
        self.sim.schedule(duration_ns, self._release_drain_gate, gate)
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "drain loops stalled",
                  server=self.node.name, duration_ns=duration_ns)

    def _release_drain_gate(self, gate) -> None:
        if not gate.triggered:
            gate.succeed()
        if self._drain_gate is gate:
            self._drain_gate = None
            if self.sim.tracer is not None:
                trace(self.sim, "fault", "drain loops released",
                      server=self.node.name)

    @property
    def is_alive(self) -> bool:
        return self.node.endpoint.alive

    # ------------------------------------------------------------------
    @property
    def cache_used_bytes(self) -> int:
        """Bytes currently allocated in the DRAM cache (tags included)."""
        return self.cache_alloc.allocated_bytes if self.cache_alloc else 0
