"""DRAM layout carving.

Servers and clients slice their DRAM device into non-overlapping windows
(RPC rings, lock table, cache buffer, proxy rings, scratch buffers).  The
carver is a simple bump allocator with alignment — regions live for the
deployment's lifetime, so nothing is ever returned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.memory import MemoryDevice


class LayoutError(Exception):
    """Device too small for the requested layout."""


class DramCarver:
    """Hands out aligned, non-overlapping windows of one device."""

    def __init__(self, device: "MemoryDevice", alignment: int = 64):
        if alignment < 1 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        self.device = device
        self.alignment = alignment
        self._next = 0

    def carve(self, nbytes: int, label: str = "") -> int:
        """Reserve ``nbytes``; returns the window's base offset."""
        if nbytes <= 0:
            raise ValueError("carve size must be positive")
        a = self.alignment
        base = (self._next + a - 1) & ~(a - 1)
        end = base + nbytes
        if end > self.device.capacity:
            raise LayoutError(
                f"cannot carve {nbytes} bytes for {label or 'region'}: "
                f"{self.device.name} has {self.device.capacity - base} left"
            )
        self._next = end
        return base

    @property
    def used(self) -> int:
        return self._next
