"""Multi-user sharing with data consistency.

Gengar guarantees consistency for shared objects through per-object
reader/writer locks driven entirely by one-sided RDMA atomics against lock
words in server DRAM — the server CPU is never involved.

Lock word protocol (see :mod:`repro.core.protocol`):

* the word starts at 0 (free);
* a writer acquires with ``CAS(0 -> (uid << 32) | 1)`` — the word carries
  the owner's id, which makes abandoned locks attributable — and retries
  with backoff on failure;
* a reader acquires with ``FAA(+2)``; if the prior value had the writer bit
  set, it undoes itself with ``FAA(-2)`` and backs off;
* releases subtract exactly what acquire added, which is correct even when
  other parties' increments are in flight.

**Release consistency.** Unlocking a write lock first syncs the client's
outstanding proxy writes (``gsync``), so any reader that subsequently
acquires the lock observes all writes made under it: proxy drains update
both the DRAM-cached copy and the NVM home before the drained counter
advances, and the writer's release happens only after that counter catches
up.  Unlocked (plain) accesses get relaxed consistency: a read may briefly
observe data older than an unsynced write, bounded by the proxy drain lag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import GengarClient

from repro.core.errors import (
    DeadlineExceededError,
    FencedError,
    LeaseExpiredError,
    LockTimeoutError,
)
from repro.core.protocol import (
    READER_UNIT,
    WRITER_BIT,
    lock_epoch,
    lock_owner,
    lock_reader_count,
    write_lock_word,
)
from repro.sim.trace import trace

#: 64-bit two's complement constant for the shared-lock decrement.
_MINUS_READER = (1 << 64) - READER_UNIT


class LockError(Exception):
    """Invalid lock usage (double release, unlock of unheld lock)."""


class LockOps:
    """Lock acquire/release state machines, bound to one client.

    Kept separate from the client so the protocol is unit-testable and the
    backoff policy is swappable.
    """

    def __init__(self, client: "GengarClient"):
        self.client = client
        self.sim = client.sim
        self._rng = self.sim.rng.stream(f"{client.name}.lockjitter")
        m = self.sim.metrics
        self.acquires = m.counter("pool.lock_acquires")
        self.retries = m.counter("pool.lock_retries")
        self.timeouts = m.counter("pool.lock_timeouts")

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> Generator[Any, Any, None]:
        base = self.client.config.lock_retry_ns
        # Capped exponential backoff with jitter to break convoys.
        delay = min(base * (1 << min(attempt, 6)), 64 * base)
        yield self.sim.timeout(self._rng.randrange(base, delay + 1))

    def _contention_wait(self, attempt: int, timeout_ns: int) -> Generator[Any, Any, None]:
        """Backoff between acquire attempts.

        The legacy path (no acquisition timeout) keeps its own capped
        exponential; with a timeout configured the wait rides
        :class:`~repro.core.client.RetryPolicy`'s seeded-jitter schedule so
        contenders and op retries share one tuning surface.
        """
        if timeout_ns:
            policy = self.client.retry_policy
            yield self.sim.timeout(
                policy.backoff_ns(attempt + 1, self.client._jitter_rng()))
        else:
            yield from self._backoff(attempt)

    def _effective_timeout(self, timeout_ns) -> int:
        if timeout_ns is None:
            return self.client.config.lock_acquire_timeout_ns
        return timeout_ns

    def _check_acquire_timeout(self, start_ns: int, timeout_ns: int,
                               gaddr: int, what: str) -> None:
        """Bound the spin on a *held* word by the acquisition timeout.

        Unlike :meth:`_check_deadline` (the whole-op budget) this is a lock
        -layer verdict: the word is owned by someone else and has stayed so
        for ``timeout_ns``.  The typed error lets callers apply policy —
        the txn layer consults the holder's wait-die stamp, plain callers
        give up instead of convoying.
        """
        if timeout_ns and self.sim.now - start_ns >= timeout_ns:
            self.timeouts.add()
            raise LockTimeoutError(
                f"{what} of {gaddr:#x} still held after "
                f"{self.sim.now - start_ns} ns (acquire timeout {timeout_ns} ns)")

    def _word_offset(self, lock_idx: int) -> int:
        return lock_idx * 8

    def _check_fence(self, gaddr: int, what: str) -> None:
        """Local lease fencing (the FaRM rule): a client whose lease has
        lapsed — or that the master already fenced — must not touch shared
        lock state, because the master may have recovered its locks and
        handed them to someone else.

        This is necessarily a *local* check for acquires: a zombie's
        ``CAS(0 -> word)`` against a free word would succeed no matter what
        epoch it carries.  Releases additionally get word-level fencing in
        :meth:`_release_write_fenced`.
        """
        client = self.client
        if not client.lease_ns:
            return
        if client.fenced:
            client.m_fence_rejections.add()
            if self.sim.tracer is not None:
                trace(self.sim, "fence", f"{what} refused: epoch fenced",
                      client=client.name, gaddr=hex(gaddr))
            raise FencedError(
                f"{what} of {gaddr:#x}: master fenced this epoch; "
                f"reattach_master() to rejoin under a fresh epoch")
        if self.sim.now >= client.lease_deadline:
            # The deadline lapsed *locally* but the master never said
            # "fenced" — e.g. an op's retry backoff outlasted the lease
            # while the master was unreachable.  That is ambiguous, not
            # terminal: raise the retryable lapse so the resilience
            # engine's renew probe asks the master for the real verdict
            # (renewed at the same epoch, or a genuine FencedError).
            client.m_fence_rejections.add()
            client.m_lease_lapses.add()
            if self.sim.tracer is not None:
                trace(self.sim, "lease", f"{what} parked: lease lapsed "
                      "locally", client=client.name, gaddr=hex(gaddr))
            raise LeaseExpiredError(
                f"{what} of {gaddr:#x}: lease deadline lapsed locally; "
                f"re-attach to renew before retrying")

    def _resolve_fence(self, gaddr: int, what: str) -> Generator[Any, Any, None]:
        """Fence gate that resolves a local lease lapse *in place*.

        Lock ops bypass the client's retry engine (they have their own
        CAS loop), so the lapse must be settled here: probe the master
        for the real verdict — renewed at the same epoch, re-adopted by a
        restarted master, or a genuine terminal :class:`FencedError` —
        instead of self-fencing on a deadline the master never enforced.
        Bounded by the retry budget; if the master stays unreachable the
        retryable lapse propagates to the caller.
        """
        policy = self.client.retry_policy
        attempt = 0
        while True:
            try:
                self._check_fence(gaddr, what)
                return
            except LeaseExpiredError:
                if attempt >= policy.max_attempts:
                    raise
                # May raise FencedError: that verdict is terminal.
                yield from self.client._lease_lapse_probe(what)
                if self.sim.now < self.client.lease_deadline:
                    continue  # renewed (or re-attached) in place
                attempt += 1
                yield self.sim.timeout(
                    policy.backoff_ns(attempt, self.client._jitter_rng()))

    def _check_deadline(self, start_ns: int, gaddr: int, what: str) -> None:
        """Bound a contended acquire loop by the client's op deadline.

        Without this, a lock held by a client that died (or a word a crash
        reset under a still-spinning acquirer) would spin forever; with a
        deadline configured the caller gets a typed error instead.
        """
        deadline = self.client.retry_policy.deadline_ns
        if deadline and self.sim.now - start_ns >= deadline:
            self.client.m_deadline_misses.add()
            raise DeadlineExceededError(
                f"{what} of {gaddr:#x} still contended after "
                f"{self.sim.now - start_ns} ns (deadline {deadline} ns)")

    # ------------------------------------------------------------------
    def acquire_write(self, gaddr: int, timeout_ns=None) -> Generator[Any, Any, None]:
        """Take the exclusive lock on ``gaddr`` (blocks until acquired, or
        until the client's op deadline — if one is configured — expires).

        ``timeout_ns`` overrides ``config.lock_acquire_timeout_ns`` for
        this acquire (``None`` = use the config; 0 = spin legacy-style);
        a positive value bounds the spin on a held word with a typed
        :class:`LockTimeoutError`."""
        timeout_ns = self._effective_timeout(timeout_ns)
        yield from self._resolve_fence(gaddr, "write-lock")
        meta = yield from self.client._meta(gaddr)
        offset = self._word_offset(meta.lock_idx)
        word = write_lock_word(self.client.uid, self.client.fence_epoch)
        start = self.sim.now
        attempt = 0
        while True:
            old = yield from self.client._atomic_cas(
                meta.server_id, offset, compare=0, swap=word
            )
            if old == 0:
                self.acquires.add()
                return
            self.retries.add()
            self._check_deadline(start, gaddr, "write-lock")
            self._check_acquire_timeout(start, timeout_ns, gaddr, "write-lock")
            yield from self._resolve_fence(gaddr, "write-lock")
            yield from self._contention_wait(attempt, timeout_ns)
            attempt += 1

    def release_write(self, gaddr: int) -> Generator[Any, Any, None]:
        """Release the exclusive lock, after syncing outstanding writes."""
        # Fence before gsync: a zombie past its lease must not touch the
        # pool at all, not even to flush stale staged writes.
        yield from self._resolve_fence(gaddr, "write-unlock")
        meta = yield from self.client._meta(gaddr)
        # Release consistency: all writes issued under the lock must be
        # durable (and cache-visible) before anyone else can acquire it.
        # (Disabled by config.sync_on_release=False at the cost of the
        # next holder's freshness guarantee.)
        if self.client.config.sync_on_release:
            yield from self.client.gsync(server_id=meta.server_id)
        if self.client.config.degraded_mode and not self.client.lease_ns:
            # A restart zeroes the lock table; a blind subtract against the
            # reset word would wrap it into a garbage state that poisons
            # every later acquire.  Verify ownership first (one extra READ,
            # paid only in degraded mode).  With leases on the fenced
            # release below performs the same verification word-level and
            # fails *typed* — a recovered lock is a fence event there, not
            # a usage bug, so this untyped pre-check must not preempt it.
            raw = yield from self.client._rdma_read(
                self.client._conns[meta.server_id],
                self.client._conns[meta.server_id].desc.lock_rkey,
                self._word_offset(meta.lock_idx), 8,
            )
            current = int.from_bytes(raw, "little")
            if not current & WRITER_BIT or lock_owner(current) != self.client.uid:
                raise LockError(
                    f"write-unlock of {gaddr:#x} not held by this client "
                    f"(word={current:#x}; lock table reset by a restart?)")
        if self.client.lease_ns:
            yield from self._release_write_fenced(gaddr, meta)
            return
        # Subtract exactly what acquire installed (owner id + writer bit);
        # correct even while readers' +2 increments are in flight.
        word = write_lock_word(self.client.uid)
        old = yield from self.client._atomic_faa(
            meta.server_id, self._word_offset(meta.lock_idx),
            add=(1 << 64) - word,
        )
        if not old & WRITER_BIT:
            raise LockError(f"write-unlock of {gaddr:#x} which was not write-locked")

    def _release_write_fenced(self, gaddr, meta) -> Generator[Any, Any, None]:
        """Word-level fenced release: clear the writer part only if the word
        still carries *this* client's uid and epoch.

        A blind FAA would subtract our old word from whatever is there now —
        if the master recovered the lock after our lease lapsed (and a new
        holder re-acquired it), that subtraction silently corrupts the new
        holder's word.  The CAS loop tolerates concurrent reader FAAs (the
        reader half changes under us) but fails typed the moment the writer
        half is no longer ours.
        """
        client = self.client
        offset = self._word_offset(meta.lock_idx)
        conn = client._conns[meta.server_id]
        mine = write_lock_word(client.uid, client.fence_epoch)
        for _ in range(64):
            raw = yield from client._rdma_read(conn, conn.desc.lock_rkey, offset, 8)
            word = int.from_bytes(raw, "little")
            if (not word & WRITER_BIT or lock_owner(word) != client.uid
                    or lock_epoch(word) != client.fence_epoch):
                client.m_fence_rejections.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "fence", "release refused: word not ours",
                          client=client.name, gaddr=hex(gaddr),
                          word=hex(word))
                raise FencedError(
                    f"write-unlock of {gaddr:#x}: word {word:#x} does not carry "
                    f"uid {client.uid} at epoch {client.fence_epoch} "
                    f"(lock recovered after a lease expiry?)")
            old = yield from client._atomic_cas(
                meta.server_id, offset, compare=word, swap=word - mine)
            if old == word:
                return
        raise LockError(f"write-unlock of {gaddr:#x}: lock word thrashing")

    def acquire_read(self, gaddr: int, timeout_ns=None) -> Generator[Any, Any, None]:
        """Take a shared lock on ``gaddr`` (blocks until acquired, or until
        the client's op deadline — if one is configured — expires).

        ``timeout_ns`` as in :meth:`acquire_write`."""
        timeout_ns = self._effective_timeout(timeout_ns)
        yield from self._resolve_fence(gaddr, "read-lock")
        meta = yield from self.client._meta(gaddr)
        offset = self._word_offset(meta.lock_idx)
        start = self.sim.now
        attempt = 0
        while True:
            old = yield from self.client._atomic_faa(
                meta.server_id, offset, add=READER_UNIT
            )
            if not old & WRITER_BIT:
                self.acquires.add()
                return
            # A writer holds it: undo our increment and back off.
            yield from self.client._atomic_faa(meta.server_id, offset, add=_MINUS_READER)
            self.retries.add()
            self._check_deadline(start, gaddr, "read-lock")
            self._check_acquire_timeout(start, timeout_ns, gaddr, "read-lock")
            yield from self._resolve_fence(gaddr, "read-lock")
            yield from self._contention_wait(attempt, timeout_ns)
            attempt += 1

    def release_read(self, gaddr: int) -> Generator[Any, Any, None]:
        """Drop a shared lock."""
        meta = yield from self.client._meta(gaddr)
        old = yield from self.client._atomic_faa(
            meta.server_id, self._word_offset(meta.lock_idx), add=_MINUS_READER
        )
        if lock_reader_count(old) == 0:
            raise LockError(f"read-unlock of {gaddr:#x} which had no readers")
