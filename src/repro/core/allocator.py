"""Extent allocators for NVM data regions and DRAM cache buffers.

A first-fit free-list allocator with coalescing on free.  It is used in two
places: the master's per-server view of NVM (backing ``gmalloc``), and each
server's DRAM cache buffer (backing promotions).  Allocations are aligned so
device accesses stay naturally aligned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class OutOfMemory(Exception):
    """No extent large enough for the request."""


class AllocatorError(Exception):
    """Invalid free / double free / corruption."""


class ExtentAllocator:
    """First-fit allocator over ``[0, capacity)`` with coalescing free."""

    def __init__(self, capacity: int, alignment: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment < 1 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        # Sorted list of (offset, length) free extents.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        # offset -> allocated length, for validation and usage accounting.
        self._allocated: Dict[int, int] = {}
        self.allocated_bytes = 0

    # ------------------------------------------------------------------
    def _round_up(self, size: int) -> int:
        a = self.alignment
        return (size + a - 1) & ~(a - 1)

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the offset.

        Raises :class:`OutOfMemory` when no extent fits (the caller decides
        whether to evict, spill to another server, or fail).
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        need = self._round_up(size)
        for i, (off, length) in enumerate(self._free):
            if length >= need:
                if length == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, length - need)
                self._allocated[off] = need
                self.allocated_bytes += need
                return off
        raise OutOfMemory(f"no extent of {need} bytes (free: {self.free_bytes})")

    def alloc_at(self, offset: int, size: int) -> None:
        """Claim a specific extent (journal replay during recovery).

        The range must lie entirely inside one free extent; raises
        :class:`AllocatorError` otherwise (a corrupt or duplicated journal).
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if offset % self.alignment:
            raise AllocatorError(f"replayed offset {offset:#x} is misaligned")
        need = self._round_up(size)
        for i, (free_off, free_len) in enumerate(self._free):
            if free_off <= offset and offset + need <= free_off + free_len:
                del self._free[i]
                if free_off < offset:
                    self._free.insert(i, (free_off, offset - free_off))
                    i += 1
                tail = (free_off + free_len) - (offset + need)
                if tail:
                    self._free.insert(i, (offset + need, tail))
                self._allocated[offset] = need
                self.allocated_bytes += need
                return
        raise AllocatorError(
            f"cannot replay allocation [{offset:#x}, {offset + need:#x}): "
            "range is not free"
        )

    def free(self, offset: int) -> None:
        """Return an allocation, coalescing with neighbouring free extents."""
        length = self._allocated.pop(offset, None)
        if length is None:
            raise AllocatorError(f"free of unallocated offset {offset:#x}")
        self.allocated_bytes -= length
        # Insert in sorted position, then merge with neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, length))
        self._coalesce_around(lo)

    def _coalesce_around(self, idx: int) -> None:
        # Merge with the next extent.
        if idx + 1 < len(self._free):
            off, length = self._free[idx]
            noff, nlen = self._free[idx + 1]
            if off + length == noff:
                self._free[idx] = (off, length + nlen)
                del self._free[idx + 1]
        # Merge with the previous extent.
        if idx > 0:
            poff, plen = self._free[idx - 1]
            off, length = self._free[idx]
            if poff + plen == off:
                self._free[idx - 1] = (poff, plen + length)
                del self._free[idx]

    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def largest_free_extent(self) -> int:
        return max((length for _, length in self._free), default=0)

    def size_of(self, offset: int) -> Optional[int]:
        """Rounded size of the allocation at ``offset`` (None if not live)."""
        return self._allocated.get(offset)

    def check_invariants(self) -> None:
        """Structural self-check, used by property tests."""
        total_free = 0
        prev_end = -1
        for off, length in self._free:
            assert length > 0, "empty free extent"
            assert off > prev_end, "free list unsorted or overlapping"
            prev_end = off + length - 1
            total_free += length
        assert total_free + self.allocated_bytes == self.capacity, (
            f"leak: free {total_free} + allocated {self.allocated_bytes} "
            f"!= capacity {self.capacity}"
        )
        # Adjacent free extents must have been coalesced.
        for (off_a, len_a), (off_b, _len_b) in zip(self._free, self._free[1:]):
            assert off_a + len_a < off_b, "uncoalesced adjacent free extents"


class PoolAllocationPolicy:
    """Chooses a home server for each new object.

    Capacity-aware round robin: rotate across servers but skip those that
    cannot fit the request, so a nearly-full server stops receiving objects
    before it overflows.
    """

    def __init__(self, allocators: Dict[int, ExtentAllocator]):
        if not allocators:
            raise ValueError("need at least one server allocator")
        self.allocators = allocators
        self._order = sorted(allocators)
        self._next = 0

    def choose(self, size: int, preferred=None) -> int:
        """Pick a server id for a ``size``-byte object.

        ``preferred`` (an iterable of server ids) is tried first — used by
        rack-local placement — before falling back to the global rotation.
        Raises :class:`OutOfMemory` when no server can fit it.
        """
        if preferred:
            wanted = [sid for sid in self._order if sid in set(preferred)]
            n = len(wanted)
            for step in range(n):
                server_id = wanted[(self._next + step) % n]
                if self.allocators[server_id].largest_free_extent >= size:
                    self._next = (self._next + step + 1) % len(self._order)
                    return server_id
        n = len(self._order)
        for step in range(n):
            server_id = self._order[(self._next + step) % n]
            if self.allocators[server_id].largest_free_extent >= size:
                self._next = (self._next + step + 1) % n
                return server_id
        raise OutOfMemory(f"no server has {size} contiguous free bytes")
