"""Gengar core: the RDMA-based distributed hybrid memory pool.

Public surface:

* :class:`~repro.core.api.GengarPool` — build and boot a deployment.
* :class:`~repro.core.client.GengarClient` — the application API
  (``gmalloc``/``gfree``/``gread``/``gwrite``/``gsync``/``glock``/``gunlock``).
* :class:`~repro.core.config.GengarConfig` — tunables, plus the named
  presets ``FULL`` / ``CACHE_ONLY`` / ``PROXY_ONLY`` / ``NVM_DIRECT`` /
  ``DRAM_ONLY`` used by ablations and baselines.
"""

from repro.core.addressing import (
    GlobalAddress,
    make_gaddr,
    offset_of,
    server_of,
    shard_of,
)
from repro.core.api import GengarPool
from repro.core.client import GengarClient, GFuture, RetryPolicy
from repro.core.errors import (
    BatchError,
    ClientError,
    DeadlineExceededError,
    FatalError,
    FencedError,
    LeaseExpiredError,
    MasterUnavailableError,
    NotMyShard,
    PartitionSuspected,
    RetryableError,
    ServerUnavailableError,
    StaleRingError,
    StaleTermError,
)
from repro.core.config import (
    CACHE_ONLY,
    DRAM_ONLY,
    FULL,
    NVM_DIRECT,
    PROXY_ONLY,
    GengarConfig,
)
from repro.core.consistency import LockError
from repro.core.master import Master
from repro.core.server import MemoryServer

__all__ = [
    "GengarPool",
    "GengarClient",
    "GengarConfig",
    "Master",
    "MemoryServer",
    "ClientError",
    "BatchError",
    "GFuture",
    "FatalError",
    "RetryableError",
    "ServerUnavailableError",
    "MasterUnavailableError",
    "StaleRingError",
    "StaleTermError",
    "NotMyShard",
    "PartitionSuspected",
    "LeaseExpiredError",
    "FencedError",
    "DeadlineExceededError",
    "RetryPolicy",
    "LockError",
    "GlobalAddress",
    "make_gaddr",
    "server_of",
    "shard_of",
    "offset_of",
    "FULL",
    "CACHE_ONLY",
    "PROXY_ONLY",
    "NVM_DIRECT",
    "DRAM_ONLY",
]
