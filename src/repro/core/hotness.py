"""Hot-data identification from RDMA access semantics.

Gengar's insight: because clients access the pool exclusively through RDMA
verbs issued by the client library, the library can *classify and count*
accesses for free — each one-sided READ/WRITE it posts is also a perfect
access record, with no server-side instrumentation.  Clients batch these
counts and piggyback them to the master; the master keeps an exponentially
decayed score per object and periodically plans promotions into the home
server's DRAM buffer and demotions out of it.

This module is pure policy (no simulation dependencies) so it can be tested
exhaustively and swapped in benchmarks (E8 compares it against LRU/LFU/random
placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple


@dataclass(slots=True)
class ObjectStats:
    """Per-object access statistics at the master.

    Slotted: the master holds one of these per live object and the planner
    walks all of them every epoch, so the per-instance dict is pure
    overhead (see the micro-benchmark note in ``repro.bench.perf``).
    """

    gaddr: int
    size: int
    score: float = 0.0
    reads: int = 0
    writes: int = 0
    cached: bool = False

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


@dataclass(frozen=True)
class PlacementPlan:
    """One epoch's cache-change decisions."""

    promotions: Tuple[int, ...]  # gaddrs to copy into DRAM
    demotions: Tuple[int, ...]  # gaddrs to drop from DRAM

    @property
    def is_noop(self) -> bool:
        return not self.promotions and not self.demotions


class PlacementPolicy(Protocol):
    """Interface all cache-placement policies implement (for E8)."""

    def record(self, gaddr: int, reads: int, writes: int) -> None: ...

    def record_batch(self, entries: List[Tuple[int, int, int]]) -> None: ...

    def plan(self, capacity: int, used: int) -> PlacementPlan: ...

    def on_promoted(self, gaddr: int) -> None: ...

    def on_demoted(self, gaddr: int) -> None: ...

    def on_freed(self, gaddr: int) -> None: ...


class EpochDecayPolicy:
    """Gengar's policy: decayed access frequency with hysteresis.

    At each :meth:`plan`, every score is multiplied by ``decay`` and the
    epoch's counts are folded in.  Objects above ``promote_threshold`` are
    promoted hottest-first while DRAM capacity lasts; cached objects that
    fell below ``demote_threshold`` are demoted.  If the cache is full, a
    promotion may evict the *coldest* cached object, but only when the
    candidate is strictly hotter — so the cache never churns on ties.
    """

    def __init__(
        self,
        decay: float = 0.5,
        promote_threshold: float = 4.0,
        demote_threshold: float = 1.0,
    ):
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if demote_threshold > promote_threshold:
            raise ValueError("demote threshold must not exceed promote threshold")
        self.decay = decay
        self.promote_threshold = promote_threshold
        self.demote_threshold = demote_threshold
        self._stats: Dict[int, ObjectStats] = {}
        self._epoch_counts: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def track(self, gaddr: int, size: int) -> None:
        """Start tracking a newly allocated object."""
        self._stats.setdefault(gaddr, ObjectStats(gaddr=gaddr, size=size))

    def record(self, gaddr: int, reads: int, writes: int) -> None:
        """Fold a client's epoch report for one object."""
        if gaddr not in self._stats:
            return  # freed (or never tracked): stale report, drop it
        r, w = self._epoch_counts.get(gaddr, (0, 0))
        self._epoch_counts[gaddr] = (r + reads, w + writes)

    def record_batch(self, entries: List[Tuple[int, int, int]]) -> None:
        """Fold many ``(gaddr, reads, writes)`` entries in one flush.

        Equivalent to calling :meth:`record` per entry in order; batched so
        the per-call overhead is paid once per report, not once per object.
        """
        stats = self._stats
        counts = self._epoch_counts
        get = counts.get
        for gaddr, reads, writes in entries:
            if gaddr not in stats:
                continue
            r, w = get(gaddr, (0, 0))
            counts[gaddr] = (r + reads, w + writes)

    def on_freed(self, gaddr: int) -> None:
        self._stats.pop(gaddr, None)
        self._epoch_counts.pop(gaddr, None)

    def on_promoted(self, gaddr: int) -> None:
        stats = self._stats.get(gaddr)
        if stats:
            stats.cached = True

    def on_demoted(self, gaddr: int) -> None:
        stats = self._stats.get(gaddr)
        if stats:
            stats.cached = False

    def stats_for(self, gaddr: int) -> Optional[ObjectStats]:
        return self._stats.get(gaddr)

    def hot_bytes(self) -> int:
        """Bytes this policy would promote if capacity allowed: the total
        size of uncached objects at or above the promote threshold.  Feeds
        the cross-shard DRAM-budget aggregation (a demand signal, so it
        deliberately ignores capacity)."""
        return sum(s.size for s in self._stats.values()
                   if not s.cached and s.score >= self.promote_threshold)

    # ------------------------------------------------------------------
    def plan(self, capacity: int, used: int) -> PlacementPlan:
        """Advance one epoch and emit promotion/demotion decisions.

        Args:
            capacity: DRAM cache bytes available (per the planner's scope).
            used: bytes currently occupied by cached objects.
        """
        # Fold the epoch's counts into decayed scores.
        for stats in self._stats.values():
            reads, writes = self._epoch_counts.get(stats.gaddr, (0, 0))
            stats.score = stats.score * self.decay + reads + writes
            stats.reads += reads
            stats.writes += writes
        self._epoch_counts.clear()

        demotions: List[int] = []
        cached = [s for s in self._stats.values() if s.cached]
        for stats in cached:
            if stats.score < self.demote_threshold:
                demotions.append(stats.gaddr)
                used -= stats.size

        # Hot uncached candidates, hottest first.
        candidates = sorted(
            (
                s
                for s in self._stats.values()
                if not s.cached and s.score >= self.promote_threshold
            ),
            key=lambda s: (-s.score, s.gaddr),
        )
        surviving = sorted(
            (s for s in cached if s.gaddr not in set(demotions)),
            key=lambda s: (s.score, s.gaddr),
        )

        promotions: List[int] = []
        for cand in candidates:
            if cand.size > capacity:
                continue  # can never fit
            while used + cand.size > capacity and surviving:
                coldest = surviving[0]
                if coldest.score >= cand.score:
                    break  # nothing colder to evict; stop churn
                surviving.pop(0)
                demotions.append(coldest.gaddr)
                used -= coldest.size
            if used + cand.size <= capacity:
                promotions.append(cand.gaddr)
                used += cand.size

        return PlacementPlan(promotions=tuple(promotions), demotions=tuple(demotions))


class LruPolicy:
    """Comparator for E8: classic LRU over a fixed capacity.

    ``record`` is the touch; ``plan`` promotes the most recently used
    uncached objects and evicts least-recently-used cached ones to fit.
    """

    def __init__(self):
        self._clock = 0
        self._last_touch: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {}
        self._cached: set[int] = set()

    def track(self, gaddr: int, size: int) -> None:
        self._sizes.setdefault(gaddr, size)

    def record(self, gaddr: int, reads: int, writes: int) -> None:
        if gaddr not in self._sizes:
            return
        self._clock += 1
        self._last_touch[gaddr] = self._clock

    def record_batch(self, entries: List[Tuple[int, int, int]]) -> None:
        """Touch many objects in order (clock ticks once per entry)."""
        sizes = self._sizes
        touch = self._last_touch
        clock = self._clock
        for gaddr, _reads, _writes in entries:
            if gaddr in sizes:
                clock += 1
                touch[gaddr] = clock
        self._clock = clock

    def on_promoted(self, gaddr: int) -> None:
        self._cached.add(gaddr)

    def on_demoted(self, gaddr: int) -> None:
        self._cached.discard(gaddr)

    def on_freed(self, gaddr: int) -> None:
        self._cached.discard(gaddr)
        self._last_touch.pop(gaddr, None)
        self._sizes.pop(gaddr, None)

    def plan(self, capacity: int, used: int) -> PlacementPlan:
        recency = sorted(
            self._last_touch.items(), key=lambda kv: (-kv[1], kv[0])
        )
        promotions: List[int] = []
        demotions: List[int] = []
        cached_by_age = sorted(
            (g for g in self._cached), key=lambda g: (self._last_touch.get(g, 0), g)
        )
        for gaddr, _touch in recency:
            if gaddr in self._cached or gaddr in set(promotions):
                continue
            size = self._sizes[gaddr]
            if size > capacity:
                continue  # can never fit
            while used + size > capacity and cached_by_age:
                # Peek-then-pop, like the other policies: a victim too
                # recent to evict for THIS candidate must stay in the pool
                # (popping it first silently excluded it — and aborting the
                # whole plan handicapped LRU against smaller, still-placeable
                # candidates later in the recency order).
                victim = cached_by_age[0]
                if self._last_touch.get(victim, 0) >= self._last_touch.get(gaddr, 0):
                    break
                cached_by_age.pop(0)
                demotions.append(victim)
                used -= self._sizes[victim]
            if used + size <= capacity:
                promotions.append(gaddr)
                used += size
        return PlacementPlan(promotions=tuple(promotions), demotions=tuple(demotions))


class LfuPolicy:
    """Comparator for E8: undecayed lifetime frequency (classic LFU)."""

    def __init__(self, promote_threshold: float = 4.0):
        self.promote_threshold = promote_threshold
        self._counts: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {}
        self._cached: set[int] = set()

    def track(self, gaddr: int, size: int) -> None:
        self._sizes.setdefault(gaddr, size)
        self._counts.setdefault(gaddr, 0)

    def record(self, gaddr: int, reads: int, writes: int) -> None:
        if gaddr in self._counts:
            self._counts[gaddr] += reads + writes

    def record_batch(self, entries: List[Tuple[int, int, int]]) -> None:
        counts = self._counts
        for gaddr, reads, writes in entries:
            if gaddr in counts:
                counts[gaddr] += reads + writes

    def on_promoted(self, gaddr: int) -> None:
        self._cached.add(gaddr)

    def on_demoted(self, gaddr: int) -> None:
        self._cached.discard(gaddr)

    def on_freed(self, gaddr: int) -> None:
        self._cached.discard(gaddr)
        self._counts.pop(gaddr, None)
        self._sizes.pop(gaddr, None)

    def plan(self, capacity: int, used: int) -> PlacementPlan:
        promotions: List[int] = []
        demotions: List[int] = []
        hot = sorted(
            ((g, c) for g, c in self._counts.items()
             if g not in self._cached and c >= self.promote_threshold),
            key=lambda kv: (-kv[1], kv[0]),
        )
        cold_cached = sorted(
            ((g, self._counts.get(g, 0)) for g in self._cached),
            key=lambda kv: (kv[1], kv[0]),
        )
        for gaddr, count in hot:
            size = self._sizes[gaddr]
            while used + size > capacity and cold_cached:
                victim, vcount = cold_cached[0]
                if vcount >= count:
                    break
                cold_cached.pop(0)
                demotions.append(victim)
                used -= self._sizes[victim]
            if used + size <= capacity:
                promotions.append(gaddr)
                used += size
        return PlacementPlan(promotions=tuple(promotions), demotions=tuple(demotions))


class RandomPolicy:
    """Comparator for E8: cache a random admissible subset each epoch."""

    def __init__(self, rng, churn: int = 4):
        self._rng = rng
        self.churn = churn
        self._sizes: Dict[int, int] = {}
        self._cached: set[int] = set()
        self._seen: set[int] = set()

    def track(self, gaddr: int, size: int) -> None:
        self._sizes.setdefault(gaddr, size)

    def record(self, gaddr: int, reads: int, writes: int) -> None:
        if gaddr in self._sizes:
            self._seen.add(gaddr)

    def record_batch(self, entries: List[Tuple[int, int, int]]) -> None:
        sizes = self._sizes
        seen = self._seen
        for gaddr, _reads, _writes in entries:
            if gaddr in sizes:
                seen.add(gaddr)

    def on_promoted(self, gaddr: int) -> None:
        self._cached.add(gaddr)

    def on_demoted(self, gaddr: int) -> None:
        self._cached.discard(gaddr)

    def on_freed(self, gaddr: int) -> None:
        self._cached.discard(gaddr)
        self._sizes.pop(gaddr, None)
        self._seen.discard(gaddr)

    def plan(self, capacity: int, used: int) -> PlacementPlan:
        promotions: List[int] = []
        demotions: List[int] = []
        candidates = sorted(self._seen - self._cached)
        self._rng.shuffle(candidates)
        for gaddr in candidates[: self.churn]:
            size = self._sizes[gaddr]
            if used + size <= capacity:
                promotions.append(gaddr)
                used += size
        return PlacementPlan(promotions=tuple(promotions), demotions=tuple(demotions))


class AccessPredictor:
    """Client-side prefetch predictor: sequential/stride + Zipf frequency.

    Two complementary signals feed :meth:`predict`:

    * **stride** — two consecutive equal non-zero deltas between successive
      read addresses confirm a stream (sequential scans, strided walks);
      the next ``depth`` continuations are predicted first.  A predicted
      address may not name a live object — the master validates against
      its directory, so wrong guesses cost one skipped entry, never a
      fault.
    * **frequency** — a decayed per-address touch count ranks the Zipf
      head, so hot point-read objects are nominated even without spatial
      locality.  Decay keeps the ranking fresh and the prune keeps the
      table bounded under adversarial (uniform) traffic.

    Pure policy — no simulation dependencies — so it is exhaustively
    testable and deterministic: equal observation sequences yield equal
    predictions.
    """

    def __init__(self, depth: int = 8, table_size: int = 256,
                 decay: float = 0.5):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if table_size < 1:
            raise ValueError("table_size must be at least 1")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        self.depth = depth
        self.table_size = table_size
        self.decay = decay
        self._last: Optional[int] = None
        self._delta: Optional[int] = None
        self._confirmed = False
        self._counts: Dict[int, float] = {}
        self._since_decay = 0

    def observe(self, gaddr: int) -> None:
        """Record one read access (call in program order)."""
        if self._last is not None:
            delta = gaddr - self._last
            if delta != 0:
                if delta == self._delta:
                    self._confirmed = True
                else:
                    self._confirmed = False
                    self._delta = delta
        self._last = gaddr
        self._counts[gaddr] = self._counts.get(gaddr, 0.0) + 1.0
        self._since_decay += 1
        if (self._since_decay >= 4 * self.table_size
                and len(self._counts) > self.table_size):
            # Decay, then drop the cold tail so the table stays bounded.
            self._since_decay = 0
            decay = self.decay
            self._counts = {
                g: v * decay for g, v in self._counts.items() if v * decay >= 0.5
            }

    def predict(self, limit: Optional[int] = None) -> List[int]:
        """Up to ``limit`` candidate addresses, most promising first."""
        limit = self.depth if limit is None else min(limit, self.depth)
        if limit <= 0:
            return []
        out: List[int] = []
        if self._confirmed and self._delta and self._last is not None:
            addr = self._last
            for _ in range(limit):
                addr += self._delta
                if addr < 0:
                    break
                out.append(addr)
        if len(out) < limit:
            hot = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
            seen = set(out)
            for gaddr, _count in hot:
                if len(out) >= limit:
                    break
                if gaddr != self._last and gaddr not in seen:
                    seen.add(gaddr)
                    out.append(gaddr)
        return out


class NeverCachePolicy:
    """Comparator for E8 and the cache-off ablation: caches nothing."""

    def track(self, gaddr: int, size: int) -> None:
        pass

    def record(self, gaddr: int, reads: int, writes: int) -> None:
        pass

    def record_batch(self, entries: List[Tuple[int, int, int]]) -> None:
        pass

    def on_promoted(self, gaddr: int) -> None:
        pass

    def on_demoted(self, gaddr: int) -> None:
        pass

    def on_freed(self, gaddr: int) -> None:
        pass

    def plan(self, capacity: int, used: int) -> PlacementPlan:
        return PlacementPlan(promotions=(), demotions=())
