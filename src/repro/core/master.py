"""The Gengar master: allocation, directory, and the hotness planner.

The master is control plane only.  It owns the global allocator and object
directory, receives the clients' piggybacked access reports, and every epoch
asks the placement policy for promotions/demotions, which it executes by RPC
against the home servers.  No data ever moves through the master.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rdma.qp import QueuePair
    from repro.rdma.rpc import RpcClient

from repro.core.addressing import server_of
from repro.core.allocator import ExtentAllocator, OutOfMemory, PoolAllocationPolicy
from repro.core.config import GengarConfig
from repro.core.directory import Directory
from repro.core.errors import RingSaturatedError
from repro.core.hotness import EpochDecayPolicy, NeverCachePolicy
from repro.core.layout import DramCarver
from repro.core.protocol import (
    CACHE_TAG_BYTES,
    JOURNAL_OP_ALLOC,
    JOURNAL_OP_FENCE,
    JOURNAL_OP_FREE,
    JOURNAL_OP_TERM,
    ObjectMeta,
    ServerDescriptor,
    proxy_payload_capacity,
)
from repro.rdma.rpc import RpcError, RpcServer
from repro.sim.trace import trace

#: RPC buffer size; ring depth comes from GengarConfig
#: (``rpc_initial_ring_slots``), the single source of truth shared with
#: servers and clients.
_RPC_BUFFER_SIZE = 4096


class MasterError(Exception):
    """Invalid master-side operation."""


class _ServerHandle:
    """Master's view of one memory server."""

    def __init__(self, descriptor: ServerDescriptor, rpc: "RpcClient", data_capacity: int,
                 lock_entries: int):
        self.descriptor = descriptor
        self.rpc = rpc
        self.allocator = ExtentAllocator(data_capacity)
        self._lock_free: List[int] = []
        self._lock_next = 0
        self._lock_entries = lock_entries

    def alloc_lock_idx(self) -> int:
        if self._lock_free:
            return self._lock_free.pop()
        if self._lock_next >= self._lock_entries:
            raise OutOfMemory("lock table exhausted")
        idx = self._lock_next
        self._lock_next += 1
        return idx

    def free_lock_idx(self, idx: int) -> None:
        self._lock_free.append(idx)


class Master:
    """Runtime state of the Gengar master."""

    def __init__(self, node: "Node", config: GengarConfig, policy_factory=None,
                 standby: bool = False, shard_id: int = 0, num_shards: int = 1):
        self.node = node
        self.sim = node.sim
        self.config = config
        self.directory = Directory()
        #: Which control-plane shard this master is (0 in the single-master
        #: topology).  A shard *owns* the servers registered with
        #: ``add_server(owned=True)`` — its directory, allocator spans,
        #: journal, lease sweep, txn-intent scan, and planner cover exactly
        #: that subset, so the PR 3/7 failover machinery generalizes
        #: per-shard without cloning.
        self.shard_id = shard_id
        self.num_shards = max(1, num_shards)
        #: server_id -> owning shard, kept in lockstep across shards by the
        #: pool (reshard bumps :attr:`map_epoch` everywhere).  Clients cache
        #: this map and invalidate it on the epoch, mirroring the metadata
        #: cache's epoch-invalidation shape.
        self.shard_map: Dict[int, int] = {}
        self.map_epoch = 0
        #: Per-server DRAM-cache budget set by the cross-shard hotness
        #: aggregation (empty = every server gets ``config.cache_capacity``,
        #: the single-master behaviour).
        self._cache_budget: Dict[int, int] = {}
        #: Shard 0's control connections to the peer shards (aggregation).
        self._peer_shards: Dict[int, "RpcClient"] = {}
        #: Every wired server handle, owned or not.  Non-owned handles carry
        #: only a control connection: the txn-intent roll-forward uses them
        #: to apply a cross-shard write-set without forfeiting the intent.
        self._all_servers: Dict[int, _ServerHandle] = {}
        self._servers: Dict[int, _ServerHandle] = {}
        self._alloc_policy: Optional[PoolAllocationPolicy] = None
        if policy_factory is None:
            if config.enable_cache:
                policy_factory = lambda: EpochDecayPolicy(  # noqa: E731
                    decay=config.hotness_decay,
                    promote_threshold=config.promote_threshold,
                    demote_threshold=config.demote_threshold,
                )
            else:
                policy_factory = NeverCachePolicy
        self._policy_factory = policy_factory
        self._policies: Dict[int, Any] = {}

        carver = DramCarver(node.dram)
        rpc_slots = config.rpc_initial_ring_slots
        rpc_base = carver.carve(2 * rpc_slots * _RPC_BUFFER_SIZE, "rpc")
        self._carver = carver
        self.rpc = RpcServer(
            node.endpoint, node.dram, base=rpc_base,
            num_buffers=rpc_slots, buffer_size=_RPC_BUFFER_SIZE,
            name=f"{node.name}.rpc",
            grow_cb=(lambda nbytes: carver.carve(nbytes, "rpc-grow"))
            if config.rpc_elastic else None,
            credits=config.rpc_credits,
        )
        self._client_uids: Dict[str, int] = {}
        self._next_uid = 1
        handlers = {
            "gmalloc": self._handle_gmalloc,
            "gfree": self._handle_gfree,
            "lookup": self._handle_lookup,
            "report": self._handle_report,
            "prefetch": self._handle_prefetch,
            "attach": self._handle_attach,
            "renew": self._handle_renew,
        }
        for method, handler in handlers.items():
            if config.master_terms:
                handler = self._with_term(handler)
            self.rpc.register(method, handler)
        # Shard-to-shard plumbing (advisory, so deliberately outside the
        # term envelope): demand stats out, budgets in, and the map fetch
        # clients use to heal a stale shard map without a full re-attach.
        self.rpc.register("shard_stats", self._handle_shard_stats)
        self.rpc.register("set_budget", self._handle_set_budget)
        self.rpc.register("shard_map", self._handle_shard_map)

        #: Lease bookkeeping (empty unless ``config.client_lease_ns``):
        #: client name -> absolute expiry time / current fencing epoch.
        self._leases: Dict[str, int] = {}
        self._epochs: Dict[str, int] = {}
        #: uid -> minimum acceptable epoch, journal-rebuilt across a master
        #: restart (the volatile ``_epochs`` map alone would let a zombie
        #: fenced while the old master was dying re-attach at its retired
        #: epoch).  Consulted by attach, populated only by :meth:`rebuild`.
        self._retired_epochs: Dict[int, int] = {}
        self._lease_sweeper_started = False
        #: Idempotency: req_id -> gaddr for executed gmallocs, and the set
        #: of executed gfree req_ids.  A client whose RPC executed but whose
        #: reply was lost (master crashed first) retries with the same
        #: req_id and gets the original outcome instead of a double
        #: allocate/free.  Journaled (the record's req_id field), so
        #: :meth:`rebuild` restores both across a failover.
        self._alloc_replies: Dict[int, int] = {}
        self._freed_reqs: set = set()
        #: True between recover() and the end of recovery_process(): control
        #: RPCs fail typed ("master recovering") so clients retry instead of
        #: hitting an empty directory.  A *standby* master is born in this
        #: state: it serves nothing until promoted via recovery_process(),
        #: whose term claim simultaneously deposes the old incumbent.
        self._recovering = standby
        self.crashes = 0
        #: Control-plane generation (split-brain fencing).  0 with terms
        #: off; a serving master's replies and journal appends all carry it.
        self.term = 1 if config.master_terms else 0
        #: Set once a server rejects our term — a successor claimed a higher
        #: one.  A deposed master fails every control RPC typed until it is
        #: restarted (recover + recovery_process claims a fresh term).
        self._deposed = False
        #: Phi-accrual failure-detector state (inert unless
        #: ``config.failure_detector``): last heartbeat receipt and the
        #: recent inter-arrival window, per client, plus who is currently
        #: suspected (lease lapsed but cadence says "late, not dead").
        self._hb_last: Dict[str, int] = {}
        self._hb_intervals: Dict[str, List[int]] = {}
        self._suspected: set = set()

        m = self.sim.metrics
        self.allocations = m.counter("master.allocations")
        self.reports = m.counter("master.reports")
        self.prefetch_requests = m.counter("master.prefetch_requests")
        self.prefetch_promotions = m.counter("master.prefetch_promotions")
        self.promote_ops = m.counter("master.promotions")
        self.demote_ops = m.counter("master.demotions")
        self.lease_renewals = m.counter("master.lease_renewals")
        self.lease_expiries = m.counter("master.lease_expiries")
        self.fence_rejections = m.counter("master.fence_rejections")
        self.lock_recoveries = m.counter("master.lock_recoveries")
        self.failovers = m.counter("master.failovers")
        self.journal_replayed = m.counter("master.journal_replayed")
        self.dup_rpcs = m.counter("master.dup_rpcs")
        self.suspected_clients = m.counter("master.suspected_clients")
        self.term_claims = m.counter("master.term_claims")
        self.depositions = m.counter("master.depositions")
        self.txn_rolled_forward = m.counter("master.txn_rolled_forward")
        self._planner_started = False
        #: Highest term seen in any journal during the last rebuild().
        self._journal_term_max = 0

    # ------------------------------------------------------------------
    # Wiring (called by the deployment bootstrap)
    # ------------------------------------------------------------------
    def add_server(self, descriptor: ServerDescriptor, rpc_client: "RpcClient",
                   data_capacity: int, owned: bool = True) -> None:
        """Register a memory server with its control-plane connection.

        ``owned=False`` wires the connection without taking metadata
        ownership: the handle is reachable for cross-shard txn-intent
        applies (and as the landing pad for a later reshard adoption) but
        never allocated from, journaled to, or planned for.
        """
        sid = descriptor.server_id
        if sid in self._all_servers:
            raise MasterError(f"server {sid} already registered")
        handle = _ServerHandle(
            descriptor, rpc_client, data_capacity, self.config.lock_table_entries
        )
        self._all_servers[sid] = handle
        if not owned:
            return
        self._servers[sid] = handle
        self._policies[sid] = self._policy_factory()
        self._rebuild_alloc_policy()

    def _rebuild_alloc_policy(self) -> None:
        self._alloc_policy = PoolAllocationPolicy(
            {s: h.allocator for s, h in self._servers.items()}
        ) if self._servers else None

    def add_peer_shard(self, shard_id: int, rpc_client: "RpcClient") -> None:
        """Wire shard 0's control connection to a peer shard (aggregation)."""
        self._peer_shards[shard_id] = rpc_client

    def serve_control(self, qp: "QueuePair", peer: Optional[str] = None) -> None:
        """Start serving a client's control connection.

        ``peer`` (the client's node name) enables slot reclamation when the
        lease sweep later fences that client.

        With elastic pools disabled (``rpc_ring_slots`` fixed), an attach
        that would claim the last free receive slot is rejected up front:
        a fully-committed fixed ring wedges silently under concurrent
        load, and a typed error at attach time beats a deadlock mid-run.
        """
        if self.rpc.would_overcommit():
            raise RingSaturatedError(
                f"{self.node.name}: fixed RPC receive pool "
                f"({self.rpc.pool_stats()['capacity']} slots) cannot admit "
                f"another control QP; use rpc_ring_slots='auto' or raise "
                f"the fixed depth")
        self.rpc.serve(qp, peer=peer)

    def _corack_servers(self, client_name: str) -> list:
        """Server ids sharing the client's rack ([] on a flat fabric)."""
        fabric = self.node.endpoint.fabric
        rack = fabric.rack_of(client_name)
        if not rack:
            return []
        return [sid for sid, h in self._servers.items()
                if fabric.rack_of(h.descriptor.node_name) == rack]

    def carve_rpc_span(self) -> int:
        """Reserve master DRAM for one outbound RPC client's buffer rings."""
        slots = self.config.rpc_initial_ring_slots
        return self._carver.carve(2 * slots * _RPC_BUFFER_SIZE, "rpc-client")

    def start_planner(self) -> None:
        """Launch the periodic promotion/demotion planner (and, on shard 0
        of a multi-shard pool, the cross-shard hotness aggregator)."""
        if not self._planner_started and self.config.enable_cache:
            self._planner_started = True
            self.sim.spawn(self._planner_loop(),
                           name=f"{self.node.name}.planner")
            if self.num_shards > 1 and self.shard_id == 0 and self._peer_shards:
                self.sim.spawn(self._aggregation_loop(),
                               name=f"{self.node.name}.aggregation")

    @property
    def servers(self) -> Dict[int, ServerDescriptor]:
        return {sid: h.descriptor for sid, h in self._servers.items()}

    # ------------------------------------------------------------------
    # Shard routing and dedup scoping
    # ------------------------------------------------------------------
    def _dedup_key(self, req_id: int) -> Tuple[int, int]:
        """Idempotency keys are ``(client uid, req_id)`` *inside the owning
        shard*, not the bare req_id.  The req_id already embeds the uid in
        its high 32 bits, but keying by the explicit pair makes the scope
        collision-proof: two clients' sequence numbers can never alias, and
        a reshard moves exactly the owning shard's entries — a retry that
        crosses a shard failover still finds (or is redirected to) the one
        entry that matches its issuer."""
        return (req_id >> 32, req_id)

    def _check_owner(self, gaddr: int) -> None:
        """Refuse ops on objects whose home server another shard owns.

        Raised *before* any state is touched, so a client with a stale
        shard map gets a typed redirect (it parses the owner and map epoch
        out of the message) and the misrouted op is never applied here.
        """
        if self.num_shards <= 1:
            return
        sid = server_of(gaddr)
        if sid in self._servers:
            return
        owner = self.shard_map.get(sid, sid % self.num_shards)
        raise MasterError(
            f"not my shard: server {sid} is owned by shard {owner}, "
            f"not shard {self.shard_id} (map epoch {self.map_epoch})")

    def _handle_shard_stats(self, request: dict) -> dict:
        """Per-server cache demand for the cross-shard aggregator."""
        self._check_serving()
        return {"demand": {sid: self._server_demand(sid)
                           for sid in sorted(self._servers)}}

    def _handle_set_budget(self, request: dict) -> bool:
        """Adopt the aggregator's per-server DRAM budgets (advisory)."""
        for sid, budget in request["budgets"].items():
            if sid in self._servers:
                self._cache_budget[sid] = budget
        return True

    def _handle_shard_map(self, request: dict) -> dict:
        """Current server->shard map; clients heal a stale map from any
        live shard without a full re-attach."""
        return {"map": dict(self.shard_map), "epoch": self.map_epoch}

    def _server_demand(self, sid: int) -> int:
        """Bytes this server's working set wants in DRAM: what is cached
        now plus what the policy would promote if capacity allowed."""
        policy = self._policies[sid]
        hot = getattr(policy, "hot_bytes", None)
        return self.directory.cached_bytes(sid) + (hot() if hot else 0)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _with_term(self, handler):
        """Wrap a handler so its reply rides in the ``{"t": term, "r": ...}``
        envelope (``master_terms`` only).  Clients compare ``t`` against the
        highest term they have observed and discard stale-term replies —
        the whole-control-plane analogue of per-object fencing epochs."""
        def wrapped(request):
            result = handler(request)
            if hasattr(result, "send"):  # generator-style handler
                result = yield from result
            return {"t": self.term, "r": result}
        return wrapped

    def _check_serving(self) -> None:
        """Fail typed while a restarted master is still replaying its
        journal; clients map this to a retryable MasterUnavailableError.
        A deposed master (a successor claimed a higher term) fails typed
        too — clients map that to StaleTermError and re-attach elsewhere."""
        if self._recovering:
            raise MasterError("master recovering; retry")
        if self._deposed:
            raise MasterError(f"master deposed: term {self.term} superseded")

    def _handle_gmalloc(self, request: dict) -> Generator[Any, Any, ObjectMeta]:
        self._check_serving()
        size = request["size"]
        if size <= 0:
            raise MasterError(f"gmalloc size must be positive, got {size}")
        req_id = request.get("req_id", 0)
        if req_id and self._dedup_key(req_id) in self._alloc_replies:
            # Retry of an RPC that executed but whose reply was lost:
            # return the original allocation instead of leaking a second.
            # If the object was resharded away after the original executed,
            # its dedup entry travelled with it — redirect the retry to the
            # owner (which replies from its copy) instead of answering from
            # a directory that no longer holds the record.
            gaddr = self._alloc_replies[self._dedup_key(req_id)]
            self._check_owner(gaddr)
            self.dup_rpcs.add()
            return self.directory.get(gaddr).to_meta()
        if self._alloc_policy is None:
            # Resharded down to zero servers: redirect the alloc to a shard
            # that owns one (same wire format as the object redirect — the
            # client learns that server's owner and re-routes the request).
            for sid in sorted(self.shard_map):
                owner = self.shard_map[sid]
                if owner != self.shard_id:
                    raise MasterError(
                        f"not my shard: server {sid} is owned by shard "
                        f"{owner}, not shard {self.shard_id} "
                        f"(map epoch {self.map_epoch})")
            raise MasterError("no memory servers registered")
        yield from self.node.cpu_work()
        preferred = None
        if self.config.placement == "rack-local":
            preferred = self._corack_servers(request.get("client", ""))
        server_id = self._alloc_policy.choose(size, preferred=preferred)
        handle = self._servers[server_id]
        nvm_offset = handle.allocator.alloc(size)
        lock_idx = handle.alloc_lock_idx()
        record = self.directory.add(server_id, nvm_offset, size, lock_idx)
        self._policies[server_id].track(record.gaddr, size)
        self.allocations.add(size)
        if self.config.metadata_journal:
            # Durability before visibility: the allocation is journaled in
            # the home server's NVM before the client learns the address.
            yield from self._journal_append(handle, {
                "op": JOURNAL_OP_ALLOC, "lock_idx": lock_idx,
                "gaddr": record.gaddr, "size": size, "req_id": req_id,
            })
        if req_id:
            self._alloc_replies[self._dedup_key(req_id)] = record.gaddr
        return record.to_meta()

    def _journal_append(self, handle: _ServerHandle,
                        payload: dict) -> Generator[Any, Any, int]:
        """Journal one record on a server, carrying our term when terms are
        on.  A server that already saw a higher term rejects the append —
        the moment a partitioned master learns it has been deposed.  The
        durability-before-visibility ordering turns that rejection into
        write-path fencing: a stale master cannot ack a single allocation,
        because the ack depends on exactly the append that just failed."""
        if self.config.master_terms:
            payload["term"] = self.term
        try:
            count = yield from handle.rpc.call("journal_append", payload)
        except RpcError as exc:
            if "stale master term" in str(exc):
                self._deposed = True
                self.depositions.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "term", "journal append rejected: deposed",
                          term=self.term)
                raise MasterError(
                    f"master deposed: term {self.term} superseded") from exc
            raise
        return count

    def _handle_gfree(self, request: dict) -> Generator[Any, Any, bool]:
        self._check_serving()
        gaddr = request["gaddr"]
        req_id = request.get("req_id", 0)
        if req_id and self._dedup_key(req_id) in self._freed_reqs:
            self.dup_rpcs.add()
            return True  # retry of a free that already executed
        self._check_owner(gaddr)
        yield from self.node.cpu_work()
        record = self.directory.remove(gaddr)
        handle = self._servers[record.server_id]
        if self.config.metadata_journal:
            yield from self._journal_append(handle, {
                "op": JOURNAL_OP_FREE, "lock_idx": record.lock_idx,
                "gaddr": gaddr, "size": record.size, "req_id": req_id,
            })
        if record.cached:
            yield from handle.rpc.call("demote", {"gaddr": gaddr})
        # Scrub before reuse: a later gmalloc of this extent must read as
        # zeros (calloc semantics), never as the previous object's bytes.
        yield from handle.rpc.call(
            "scrub", {"offset": record.nvm_offset, "size": record.size}
        )
        handle.allocator.free(record.nvm_offset)
        handle.free_lock_idx(record.lock_idx)
        self._policies[record.server_id].on_freed(gaddr)
        if req_id:
            self._freed_reqs.add(self._dedup_key(req_id))
        return True

    def _handle_lookup(self, request: dict) -> Generator[Any, Any, ObjectMeta]:
        self._check_serving()
        self._check_owner(request["gaddr"])
        yield from self.node.cpu_work()
        return self.directory.get(request["gaddr"]).to_meta()

    def _handle_report(self, request: dict) -> Generator[Any, Any, List[Tuple[int, bool, int]]]:
        """Fold a client's access report; reply with location updates.

        The reply piggybacks, for every reported object, its current cache
        location *if* it differs from what the client believes — this is how
        clients learn about promotions without polling.

        With leases enabled the request additionally carries the client's
        name and fencing epoch, and a successful report doubles as a lease
        renewal (the reply then wraps the updates with the lease verdict).
        With leases off, request and reply are byte-identical to the
        pre-lease protocol.
        """
        self._check_serving()
        yield from self.node.cpu_work()
        updates: List[Tuple[int, bool, int]] = []
        # Group entries per home server and flush each group in one
        # record_batch call.  Policies are independent per-server objects and
        # in-server order is preserved, so decisions match per-entry record().
        per_server: Dict[int, List[Tuple[int, int, int]]] = {}
        for gaddr, reads, writes, believed_cached in request["entries"]:
            record = self.directory.lookup(gaddr)
            if record is None:
                continue  # freed concurrently
            per_server.setdefault(record.server_id, []).append(
                (gaddr, reads, writes))
            if record.cached != believed_cached:
                updates.append((gaddr, record.cached, record.cache_offset))
        for sid, batch in per_server.items():
            self._policies[sid].record_batch(batch)
        self.reports.add()
        name = request.get("client")
        if name is None:
            return updates
        verdict = self._lease_verdict(name, request.get("epoch", 0))
        if verdict == "ok":
            self._renew_lease(name)
        elif verdict == "fenced":
            self.fence_rejections.add()
        return {"updates": updates, "lease": verdict}

    def _handle_prefetch(self, request: dict) -> Generator[Any, Any, List[Tuple[int, bool, int]]]:
        """Client-driven promotion hints — the prefetch fast path.

        Clients nominate objects that crossed their admission threshold (or
        that their stride/frequency predictor expects next), each with the
        read count observed so far.  The master validates every entry
        against the directory, folds the counts into the home server's
        placement policy (so a freshly prefetched object carries enough
        score to survive the next epoch's demotion sweep instead of
        thrashing), and promotes uncached entries immediately — no
        epoch-boundary wait.  The reply carries each live entry's current
        location, so the requesting client can hit the DRAM cache on its
        very next read; already-cached entries resolve to their existing
        slot, which is how a client learns locations other clients' traffic
        earned.

        Advisory end to end: unknown addresses (freed, or wrong stride
        guesses) are skipped, and a failed promotion (cache full, server
        down) is reported as uncached rather than raised.
        """
        self._check_serving()
        yield from self.node.cpu_work()
        updates: List[Tuple[int, bool, int]] = []
        self.prefetch_requests.add()
        if not self.config.enable_cache:
            return updates
        before = self.promote_ops.count
        for gaddr, reads in request["entries"]:
            record = self.directory.lookup(gaddr)
            if record is None:
                continue  # freed concurrently, or a wrong stride guess
            policy = self._policies[record.server_id]
            if reads > 0:
                policy.record(gaddr, reads, 0)
            if not record.cached:
                yield from self._promote(
                    self._servers[record.server_id], policy, gaddr)
                record = self.directory.lookup(gaddr)
                if record is None:
                    continue
            updates.append((gaddr, record.cached, record.cache_offset))
        promoted = self.promote_ops.count - before
        if promoted:
            self.prefetch_promotions.add(promoted)
        return updates

    def _handle_attach(self, request: dict) -> Generator[Any, Any, dict]:
        if self._deposed:
            # A deposed master must not grant leases/identities: an attach
            # it served would park the client on a dead control plane
            # forever (re-attach "succeeds", renewals bounce, repeat).
            # The stale-term error sends the client to the incumbent.
            raise MasterError(f"master deposed: term {self.term} superseded")
        yield from self.node.cpu_work()
        name = request["client"]
        uid = self._client_uids.get(name)
        if uid is None:
            prev_uid = request.get("uid")
            if prev_uid:
                # Re-attach to a restarted master: adopt the client's old
                # uid so its existing lock words stay attributable to it.
                uid = prev_uid
                self._next_uid = max(self._next_uid, uid + 1)
            else:
                uid = self._next_uid
                self._next_uid += 1
            self._client_uids[name] = uid
        # The fencing epoch is the max of all three views: ours is ahead if
        # we fenced this client while it was away (it rejoins under the
        # fresh epoch); the client's is ahead if *we* restarted and lost
        # it; and the journal-rebuilt retirement floor is ahead of BOTH
        # when the client was fenced while dead and the master restarted —
        # neither volatile view ever saw the bump.
        epoch = max(self._epochs.get(name, 0), request.get("epoch", 0),
                    self._retired_epochs.get(uid, 0))
        self._epochs[name] = epoch
        if self.config.client_lease_ns:
            self._leases[name] = self.sim.now + self.config.client_lease_ns
            if self.config.failure_detector:
                # The attach is a heartbeat: without this, a client that
                # loses the master right after attaching has no arrival
                # history, phi comes back infinite, and the very first
                # lapsed sweep fences it — the spurious revocation the
                # detector exists to prevent.
                self._note_heartbeat(name)
            self._start_lease_sweeper()
            if self.sim.tracer is not None:
                trace(self.sim, "lease", "lease granted", client=name,
                      uid=uid, epoch=epoch,
                      lease_ns=self.config.client_lease_ns)
        return {
            "servers": [h.descriptor for h in self._servers.values()],
            "config": self.config,
            "client_id": uid,
            "epoch": epoch,
            "lease_ns": self.config.client_lease_ns,
        }

    def _handle_renew(self, request: dict) -> Generator[Any, Any, dict]:
        """Standalone lease heartbeat (for clients with nothing to report)."""
        self._check_serving()
        yield from self.node.cpu_work()
        name, epoch = request["client"], request.get("epoch", 0)
        verdict = self._lease_verdict(name, epoch)
        if verdict == "ok":
            self._renew_lease(name)
            return {"ok": True, "lease_ns": self.config.client_lease_ns}
        if verdict == "fenced":
            self.fence_rejections.add()
            if self.sim.tracer is not None:
                trace(self.sim, "fence", "renew rejected: epoch retired",
                      client=name, epoch=epoch)
        return {"ok": False, "reason": verdict}

    # ------------------------------------------------------------------
    # Leases and fenced lock recovery
    # ------------------------------------------------------------------
    def _lease_verdict(self, name: str, epoch: int) -> str:
        """``ok`` | ``fenced`` (we retired this epoch) | ``unknown`` (we
        have never heard of this client — typically a restarted master —
        so it must re-attach)."""
        if name not in self._client_uids:
            return "unknown"
        current = self._epochs.get(name, 0)
        if current > epoch:
            return "fenced"
        if current < epoch:
            return "unknown"  # we restarted and lost the epoch; re-attach
        return "ok"

    def _renew_lease(self, name: str) -> None:
        if self.config.client_lease_ns:
            self._leases[name] = self.sim.now + self.config.client_lease_ns
            self.lease_renewals.add()
            if self.config.failure_detector:
                self._note_heartbeat(name)

    # ------------------------------------------------------------------
    # Phi-accrual failure detection (partition-aware lease expiry)
    # ------------------------------------------------------------------
    def _note_heartbeat(self, name: str) -> None:
        """Feed one heartbeat receipt into the inter-arrival estimator."""
        now = self.sim.now
        last = self._hb_last.get(name)
        if last is not None and now > last:
            window = self._hb_intervals.setdefault(name, [])
            window.append(now - last)
            if len(window) > self.config.phi_window:
                del window[0]
        self._hb_last[name] = now
        if name in self._suspected:
            self._suspected.discard(name)
            if self.sim.tracer is not None:
                trace(self.sim, "partition", "suspected client heard again",
                      client=name)

    def _phi(self, name: str) -> float:
        """Suspicion level for ``name``: how implausibly late is its next
        heartbeat, given the cadence we actually observed?

        Exponential-tail approximation of phi-accrual: with mean observed
        inter-arrival m and silence t, P(still alive) ~ exp(-t/m), so
        phi = t / (m * ln 10).  Flapping links inflate m, which keeps phi
        low through the next flap — exactly the spurious-revocation
        damping the detector exists for.
        """
        last = self._hb_last.get(name)
        if last is None:
            return float("inf")  # never heard a heartbeat at all
        window = self._hb_intervals.get(name, [])
        if len(window) >= 2:
            mean = sum(window) / len(window)
        else:
            mean = float(self.config.client_lease_ns)
        elapsed = self.sim.now - last
        return elapsed / (mean * 2.302585092994046)

    def _start_lease_sweeper(self) -> None:
        if not self._lease_sweeper_started:
            self._lease_sweeper_started = True
            self.sim.spawn(self._lease_sweeper_loop(),
                           name=f"{self.node.name}.leases")

    def _lease_sweeper_loop(self) -> Generator[Any, Any, None]:
        check = self.config.lease_check_ns or max(1, self.config.client_lease_ns // 4)
        validated_ns = self.sim.now
        while True:
            yield self.sim.timeout(check)
            # A dead master detects nothing (its own clock is "stopped");
            # outbound RPCs from a crashed node would otherwise still work
            # in the model, so self-check aliveness explicitly.
            if not self.node.endpoint.alive or self._recovering or self._deposed:
                continue
            now = self.sim.now
            if (self.config.master_terms and self._servers
                    and now - validated_ns >= self.config.client_lease_ns):
                # Periodic authority re-validation against the journal (the
                # master-lease-on-shared-storage pattern).  Without it a
                # healed stale master whose clients happen to still
                # heartbeat *it* would keep granting leases at its old term
                # forever — neither side ever hears about the successor,
                # because only the journal knows.  Rejection deposes us;
                # every later reply then bounces clients to the incumbent.
                validated_ns = now
                try:
                    yield from self._validate_term()
                except MasterError:
                    continue  # deposed: _check_serving refuses from now on
            expired = sorted(n for n, exp in self._leases.items() if exp <= now)
            for name in expired:
                yield from self._expire_lease(name)

    def _validate_term(self) -> Generator[Any, Any, bool]:
        """Ask the journal whether this master's term still rules.

        Appends a no-op TERM record at our own term; a server that saw a
        successor's higher term rejects it, which :meth:`_journal_append`
        turns into deposition + :class:`MasterError`.  Returns True when
        the journal accepted (authority confirmed), False when it was
        unreachable (authority unknown — act on nothing).
        """
        handle = self._servers[min(self._servers)]
        try:
            yield from self._journal_append(handle, {
                "op": JOURNAL_OP_TERM, "lock_idx": 0, "gaddr": self.term,
                "size": 0, "req_id": 0})
        except RpcError as exc:
            if "journal full" not in str(exc):
                return False  # journal unreachable: no verdict either way
            # A full journal still term-checked the append first: confirmed.
        return True

    def _expire_lease(self, name: str) -> Generator[Any, Any, None]:
        # Re-check the deadline at processing time, not snapshot time: the
        # sweeper yields inside each earlier client's recovery RPCs, and a
        # client that renewed or re-attached in that window holds a fresh
        # lease at the SAME epoch — fencing it now would clear locks it
        # legitimately holds and hand them to a second writer.
        expiry = self._leases.get(name)
        if expiry is None or expiry > self.sim.now:
            return  # renewed / re-attached while this sweep was in flight
        if self.config.failure_detector:
            # Partition-aware expiry: a lapsed deadline alone is not death.
            # While the accrued suspicion stays under the threshold the
            # client is only *suspected* (heartbeats were flowing at a
            # cadence that makes "late" more plausible than "dead"); its
            # lease entry stays so every sweep re-evaluates, and fencing
            # happens only once phi crosses the threshold.
            phi = self._phi(name)
            if phi < self.config.phi_threshold:
                if name not in self._suspected:
                    self._suspected.add(name)
                    self.suspected_clients.add()
                    if self.sim.tracer is not None:
                        trace(self.sim, "partition", "client suspected",
                              client=name, phi=round(phi, 2))
                return
            self._suspected.discard(name)
        if self.config.master_terms and self._servers:
            # Authority check before the irreversible part: lock recovery
            # CAS-clears lock words directly, so unlike allocations it is
            # not naturally fenced by the journal write path.  A deposed
            # master behind a healed partition would otherwise "expire"
            # every client it stopped hearing from and clear locks the
            # incumbent's clients legitimately hold.  Appending a no-op
            # TERM record at our own term makes the servers adjudicate:
            # rejection means a successor claimed a higher term — stand
            # down instead of fencing.
            try:
                confirmed = yield from self._validate_term()
            except MasterError:
                if self.sim.tracer is not None:
                    trace(self.sim, "term", "lease fence aborted: deposed",
                          client=name, term=self.term)
                return
            if not confirmed:
                return  # journal unreachable: no authority to fence now
        del self._leases[name]
        self.lease_expiries.add()
        if self.sim.tracer is not None:
            trace(self.sim, "lease", "lease expired", client=name)
        yield from self._fence_and_recover(name)

    def _fence_and_recover(self, name: str) -> Generator[Any, Any, int]:
        """Declare a client dead: bump its fencing epoch, recover its write
        locks (conditioned on the retired epoch), release its pins, and
        retire its proxy rings.  Returns the number of locks recovered.

        The epoch bump happens *first*, so even if this sweep is slow, any
        renew the zombie sends concurrently is already rejected.
        """
        uid = self._client_uids.get(name)
        if uid is None:
            raise MasterError(f"unknown client {name!r}")
        fencing = bool(self.config.client_lease_ns)
        old_epoch = self._epochs.get(name, 0)
        if fencing:
            self._epochs[name] = old_epoch + 1
            if self.config.metadata_journal:
                # Durability before destruction: persist the retirement
                # before any lock is cleared, so a master that dies mid-
                # sweep (and rebuilds with a blank epoch map) still refuses
                # to re-grant the epoch whose locks it was recovering.
                yield from self._journal_fence(uid, old_epoch + 1)
        # Crash-atomic transactions: before force-unlocking anything, roll
        # the dead client's durable intents forward.  Ordering matters — a
        # lock cleared first could admit a new writer whose bytes a late
        # roll-forward would then clobber.  Transactions that never reached
        # their intent append roll *back* implicitly: the buffered write-set
        # died with the client, so force-unlock alone erases them.
        if self.config.enable_txn:
            yield from self._txn_recover(owners=[uid], scan_all=True)
        recovered = 0
        for record in list(self.directory.objects()):
            handle = self._servers[record.server_id]
            try:
                cleared = yield from handle.rpc.call("clear_lock_if_owner", {
                    "lock_idx": record.lock_idx, "owner": uid,
                    "epoch": old_epoch if fencing else None,
                })
            except RpcError:
                continue  # home server down: its lock table died with it
            if cleared:
                recovered += 1
            if record.pinned and record.pinned_by == name:
                record.pinned = False
                record.pinned_by = None
                yield from self._demote(
                    handle, self._policies[record.server_id], record.gaddr)
        for sid in sorted(self._servers):
            try:
                yield from self._servers[sid].rpc.call(
                    "retire_ring", {"client": name})
            except RpcError:
                pass  # dead server: its DRAM (and the ring) are gone anyway
        # The fenced client's posted control-RPC slot goes back to this
        # master's shared receive pool (servers reclaim theirs inside
        # retire_ring); the serve loop re-arms only on a re-attach.
        self.rpc.reclaim_peer(name)
        self.lock_recoveries.add(recovered)
        if self.sim.tracer is not None:
            trace(self.sim, "lease", "client fenced", client=name,
                  epoch=self._epochs.get(name, 0), locks_recovered=recovered)
        return recovered

    def _journal_fence(self, uid: int, epoch: int) -> Generator[Any, Any, None]:
        """Journal an epoch retirement on the first reachable server.

        Best-effort across servers: rebuild scans every journal, so one
        durable copy suffices.  If no journal is reachable the sweep
        proceeds un-journaled — exactly today's (pre-journal) guarantee.
        """
        payload = {"op": JOURNAL_OP_FENCE, "lock_idx": 0, "gaddr": uid,
                   "size": epoch, "req_id": 0}
        for sid in sorted(self._servers):
            try:
                yield from self._journal_append(self._servers[sid],
                                                dict(payload))
                return
            except MasterError:
                raise  # deposed mid-sweep: no authority to keep fencing
            except RpcError:
                continue  # server (or its journal) down: try the next one

    def _txn_recover(self, owners: Optional[list] = None,
                     exclude: Optional[list] = None,
                     scan_all: bool = False) -> Generator[Any, Any, int]:
        """Roll committed-but-unapplied transactions forward from their
        durable intent records (see ``repro.txn``).

        Scans every reachable server's intent region for records owned by
        ``owners`` (a named dead client) or NOT owned by ``exclude`` (the
        post-failover survivors), applies each write-set to its home
        servers, and clears the intent.  Applies are idempotent absolute
        byte writes, so racing a half-dead zombie that is still applying
        the same intent converges on the same final state.  An intent
        whose target server is unreachable is left in place for the next
        sweep — clearing it early would forfeit the roll-forward.
        Returns the number of transactions completed.
        """
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        completed = 0
        # ``scan_all`` widens the scan past this shard's owned servers: a
        # dead client's intent lives on its *coordinator* server, which may
        # belong to another shard even when the write-set targets ours.
        # Fencing must find it before force-unlocking, or the cleared lock
        # admits a new writer whose bytes the owning shard's later
        # roll-forward would clobber.  (Post-failover exclude-scans stay
        # per-shard: every shard runs its own.)
        scan = self._all_servers if scan_all and self._all_servers \
            else self._servers
        for sid in sorted(scan):
            try:
                records = yield from scan[sid].rpc.call(
                    "txn_intent_scan", {"owners": owners, "exclude": exclude})
            except RpcError:
                continue  # coordinator down: its intents wait for it
            for record in records:
                by_server: Dict[int, list] = {}
                for entry in record["writes"]:
                    by_server.setdefault(server_of(entry[0]), []).append(entry)
                applied = True
                for tsid in sorted(by_server):
                    # A committed write-set may span servers other shards
                    # own — the coordinator's shard still rolls the whole
                    # intent forward via its non-owned control connections
                    # (applies are idempotent absolute writes, so racing
                    # the owning shard's own sweep converges).
                    handle = self._servers.get(tsid) or self._all_servers.get(tsid)
                    if handle is None:
                        applied = False
                        continue
                    try:
                        yield from handle.rpc.call(
                            "txn_apply", {"writes": by_server[tsid]})
                    except RpcError:
                        applied = False
                if not applied:
                    continue  # retry whole-txn on a later sweep
                try:
                    yield from scan[sid].rpc.call(
                        "txn_intent_clear", {"txn": record["txn"]})
                except RpcError:
                    continue  # re-applying later is harmless (idempotent)
                completed += 1
                self.txn_rolled_forward.add()
                if self.sim.tracer is not None:
                    trace(self.sim, "txn", "rolled forward",
                          txn=record["txn"], owner=record["owner"],
                          writes=len(record["writes"]))
        if rec is not None:
            rec.record(self.node.name, "txn.recover", t0,
                       rolled_forward=completed)
        return completed

    # ------------------------------------------------------------------
    # Admin API: pin/unpin an object in DRAM (used by microbenchmarks and
    # operators who know an object is hot regardless of observed traffic).
    # ------------------------------------------------------------------
    def pin(self, gaddr: int, client: Optional[str] = None) -> Generator[Any, Any, None]:
        """Force-promote an object into its home server's DRAM cache and
        keep it there regardless of observed hotness (until unpinned).

        ``client`` attributes the pin, so lease expiry releases exactly the
        pins the dead client asked for (operator pins outlive any client).
        """
        record = self.directory.get(gaddr)
        handle = self._servers[record.server_id]
        # Pins are an explicit operator decision, so they bypass the
        # drain-coherence promotion gate; the pinning caller knows the
        # object's writes may need the verified-cache-write round trip.
        yield from self._promote(handle, self._policies[record.server_id],
                                 gaddr, force=True)
        record.pinned = True
        record.pinned_by = client

    def unpin(self, gaddr: int) -> Generator[Any, Any, None]:
        """Release a pin and demote the object out of DRAM."""
        record = self.directory.get(gaddr)
        record.pinned = False
        record.pinned_by = None
        handle = self._servers[record.server_id]
        yield from self._demote(handle, self._policies[record.server_id], gaddr)

    def evict_client(self, client_name: str) -> Generator[Any, Any, int]:
        """Recovery: clear every write lock a (dead) client still holds,
        release its pins, and retire its proxy rings.

        Uses the owner id embedded in the lock word, so only that client's
        locks are touched; readers and other writers are unaffected.  With
        leases enabled this also retires the client's fencing epoch (it is
        the same path a lease expiry takes).  Returns the number of locks
        recovered.
        """
        self._leases.pop(client_name, None)
        recovered = yield from self._fence_and_recover(client_name)
        return recovered

    def reset_volatile_state(self) -> None:
        """Simulate a master restart: forget everything not in NVM.

        The directory, allocators, lock bookkeeping, and hotness state are
        all DRAM-resident.  With the metadata journal enabled,
        :meth:`rebuild` restores the directory from the servers' NVM.
        Client identities (uids, epochs, leases) are volatile too, but are
        wiped by :meth:`recover` rather than here: callers driving a bare
        ``reset + rebuild`` (no process restart) keep their sessions.
        """
        self.directory = Directory()
        self._alloc_replies = {}
        self._freed_reqs = set()
        self._cache_budget = {}
        for sid, handle in self._servers.items():
            handle.allocator = ExtentAllocator(handle.allocator.capacity)
            handle._lock_free = []
            handle._lock_next = 0
            self._policies[sid] = self._policy_factory()

    def rebuild(self) -> Generator[Any, Any, int]:
        """Restore the directory from the NVM metadata journals.

        Replays every server's journal in order (alloc/free records), then
        reconstructs each server's lock-index bookkeeping.  Returns the
        number of live objects recovered.  Requires
        ``config.metadata_journal``.
        """
        if not self.config.metadata_journal:
            raise MasterError("metadata journal disabled; nothing to rebuild from")
        from repro.core.addressing import offset_of

        self._journal_term_max = 0
        for sid in sorted(self._servers):
            handle = self._servers[sid]
            records = yield from handle.rpc.call("journal_read", {})
            live_locks = set()
            for rec in records:
                if rec["op"] == JOURNAL_OP_TERM:
                    # Term claims interleave with alloc/free records; the
                    # directory replay skips them, the successor's claim
                    # (journal max + 1) supersedes them.
                    self._journal_term_max = max(self._journal_term_max,
                                                 rec["gaddr"])
                    continue
                if rec["op"] == JOURNAL_OP_FENCE:
                    # Epoch retirement (uid in gaddr, floor in size): the
                    # attach path refuses to grant this uid anything below
                    # the journaled floor.
                    uid = rec["gaddr"]
                    self._retired_epochs[uid] = max(
                        self._retired_epochs.get(uid, 0), rec["size"])
                    continue
                if rec["op"] == JOURNAL_OP_ALLOC:
                    handle.allocator.alloc_at(offset_of(rec["gaddr"]), rec["size"])
                    self.directory.add(sid, offset_of(rec["gaddr"]),
                                       rec["size"], rec["lock_idx"])
                    self._policies[sid].track(rec["gaddr"], rec["size"])
                    live_locks.add(rec["lock_idx"])
                    if rec.get("req_id"):
                        self._alloc_replies[
                            self._dedup_key(rec["req_id"])] = rec["gaddr"]
                else:  # free
                    self.directory.remove(rec["gaddr"])
                    handle.allocator.free(offset_of(rec["gaddr"]))
                    self._policies[sid].on_freed(rec["gaddr"])
                    live_locks.discard(rec["lock_idx"])
                    if rec.get("req_id"):
                        self._freed_reqs.add(self._dedup_key(rec["req_id"]))
            # Lock-index bookkeeping: everything below the high-water mark
            # that is not live goes back on the free list.
            used = [rec["lock_idx"] for rec in records
                    if rec["op"] == JOURNAL_OP_ALLOC]
            high = max(used, default=-1) + 1
            handle._lock_next = high
            handle._lock_free = [i for i in range(high) if i not in live_locks]
        return len(self.directory)

    # ------------------------------------------------------------------
    # Resharding (admin handover, driven by GengarPool.reshard)
    # ------------------------------------------------------------------
    def export_server(self, sid: int) -> dict:
        """Strip ownership of server ``sid`` and hand its metadata to the
        caller for adoption by another shard.

        Instant in virtual time (no yields), so the pool can swap
        ownership atomically — no op ever observes a server owned by
        nobody.  The handle itself stays wired (demoted to the non-owned
        set) for cross-shard txn applies.  Dedup entries for the server's
        objects travel with it *and* stay behind: a retry landing on
        either side gets the original outcome or a typed redirect, never
        a double execution.
        """
        if sid not in self._servers:
            raise MasterError(
                f"shard {self.shard_id} does not own server {sid}")
        handle = self._servers.pop(sid)
        policy = self._policies.pop(sid)
        self._rebuild_alloc_policy()
        self._cache_budget.pop(sid, None)
        alloc_replies = {key: gaddr for key, gaddr in self._alloc_replies.items()
                         if server_of(gaddr) == sid}
        return {
            "server_id": sid,
            "term": self.term,
            "records": self.directory.take_server(sid),
            "allocator": handle.allocator,
            "lock_free": list(handle._lock_free),
            "lock_next": handle._lock_next,
            "alloc_replies": alloc_replies,
            # Freed objects left no directory trace to attribute a server
            # to, so the whole set rides along (a dup free is just "True").
            "freed_reqs": set(self._freed_reqs),
            "policy": policy,
        }

    def adopt_server(self, state: dict) -> None:
        """Adopt a server another shard exported (reshard handover).

        Grafts the exported allocator, lock bookkeeping, directory
        records, and dedup entries onto *our own* pre-wired handle — the
        exporter's RPC client belongs to its node and is never reused.
        """
        sid = state["server_id"]
        handle = self._all_servers.get(sid)
        if handle is None:
            raise MasterError(
                f"shard {self.shard_id} has no connection to server {sid}")
        if sid in self._servers:
            raise MasterError(
                f"shard {self.shard_id} already owns server {sid}")
        handle.allocator = state["allocator"]
        handle._lock_free = list(state["lock_free"])
        handle._lock_next = state["lock_next"]
        self._servers[sid] = handle
        self._policies[sid] = state["policy"]
        self._rebuild_alloc_policy()
        for record in state["records"]:
            self.directory.adopt(record)
        self._alloc_replies.update(state["alloc_replies"])
        self._freed_reqs |= state["freed_reqs"]
        # Term floor handover: the server's journal rejects appends below
        # the max term it has seen, which includes the exporter's — serve
        # at least there or our first journaled op would depose us.
        self.term = max(self.term, state["term"])

    def apply_shard_map(self, new_map: Dict[int, int]) -> None:
        """Install a new server->shard map and bump the map epoch (the
        pool calls this on every shard in the same virtual instant)."""
        self.shard_map = dict(new_map)
        self.map_epoch += 1

    # ------------------------------------------------------------------
    # Master crash / failover
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail the master process.  All volatile state (directory,
        allocators, leases, client identities) will be gone at restart;
        clients' control RPCs complete with ``RETRY_EXCEEDED`` and surface
        as a retryable ``MasterUnavailableError``.  The data plane is
        untouched: reads, writes, and lock atomics go straight to the
        memory servers and keep working."""
        if not self.node.endpoint.alive:
            return
        self.node.endpoint.alive = False
        self.crashes += 1
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "master crashed")

    def recover(self) -> None:
        """Restart the master process with empty volatile state.

        The master starts in *recovering* mode — control RPCs fail typed
        ("master recovering") until :meth:`recovery_process` finishes
        replaying the metadata journal — so no client ever observes the
        half-empty directory.
        """
        self.node.endpoint.alive = True
        self._recovering = True
        self.reset_volatile_state()
        self._client_uids = {}
        self._epochs = {}
        self._retired_epochs = {}  # journal-rebuilt, not volatile carry-over
        self._leases = {}
        self._hb_last = {}
        self._hb_intervals = {}
        self._suspected = set()
        self._deposed = False
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "master restarted; volatile state lost")

    def recovery_process(self, rebuild: bool = True) -> Generator[Any, Any, int]:
        """Journal-driven failover: rebuild the directory from the servers'
        NVM journals, then reopen for business.  Returns the number of live
        objects recovered.

        Must run (and finish) after every :meth:`recover` — it is the only
        thing that clears the *recovering* gate.  With ``rebuild=False`` (or
        no journal) the master reopens with an empty directory instead of
        replaying.

        With leases enabled, also arms the post-failover orphan sweep:
        clients get one lease interval to re-attach (keeping their uid and
        epoch); locks whose owner never re-registers are then recovered.
        """
        recovered = 0
        claimed = not self.config.master_terms
        try:
            if rebuild and self.config.metadata_journal:
                recovered = yield from self.rebuild()
                self.journal_replayed.add(recovered)
            else:
                if self.sim.tracer is not None:
                    trace(self.sim, "fault",
                          "no journal replay: master reopens with an empty "
                          "directory")
            if self.config.master_terms:
                # Claim a term above every journaled one *before* opening
                # for business: until the claim lands, this master keeps
                # failing RPCs typed ("recovering"), so it can never serve
                # concurrently with the incumbent it is deposing.
                yield from self._claim_term(scan=not rebuild)
                claimed = True
        finally:
            # A master whose term claim never landed stays recovering: it
            # must not serve under a possibly-stale term.
            if claimed:
                self._recovering = False
        self.failovers.add()
        if self.sim.tracer is not None:
            trace(self.sim, "failover", "master recovered", objects=recovered,
                  journal=self.config.metadata_journal)
        if self.config.client_lease_ns:
            self.sim.spawn(self._orphan_lock_sweep(),
                           name=f"{self.node.name}.orphan_sweep")
        return recovered

    def _claim_term(self, scan: bool = False) -> Generator[Any, Any, None]:
        """Persist a term strictly above every journaled one.

        The claim is a TERM record appended to each server's journal (the
        term value rides the record's gaddr field).  Servers adopt the max
        term they have journaled and reject appends below it, so the claim
        simultaneously (a) makes the new term durable and (b) fences every
        older master out of the write path on that server.  A concurrent
        higher claim surfaces as our own append being rejected; we re-read
        and re-claim above it.  Unreachable servers are retried a few
        times, then skipped — they learn the term from the next successor
        that can reach them (traced, so the audit sees the gap).
        """
        if scan:
            # No rebuild ran: still honour journaled terms before claiming.
            for sid in sorted(self._servers):
                try:
                    records = yield from self._servers[sid].rpc.call(
                        "journal_read", {})
                except RpcError:
                    continue
                for rec in records:
                    if rec["op"] == JOURNAL_OP_TERM:
                        self._journal_term_max = max(self._journal_term_max,
                                                     rec["gaddr"])
        retry_wait = max(1, self.config.client_lease_ns // 4) \
            if self.config.client_lease_ns else 25_000
        while True:
            self.term = max(self.term, self._journal_term_max) + 1
            pending = sorted(self._servers)
            superseded = False
            for _ in range(3):
                still = []
                for sid in pending:
                    try:
                        yield from self._servers[sid].rpc.call(
                            "journal_append", {
                                "op": JOURNAL_OP_TERM, "lock_idx": 0,
                                "gaddr": self.term, "size": 0, "req_id": 0,
                                "term": self.term,
                            })
                    except RpcError as exc:
                        if "stale master term" in str(exc):
                            superseded = True
                        elif "journal full" in str(exc):
                            pass  # durable records exist; term rides appends
                        else:
                            still.append(sid)
                if superseded or not still:
                    break
                pending = still
                yield self.sim.timeout(retry_wait)
            if superseded:
                # A rival claimed concurrently; its TERM record is in the
                # journal now — re-read and go strictly above it.
                self._journal_term_max = self.term
                for sid in sorted(self._servers):
                    try:
                        records = yield from self._servers[sid].rpc.call(
                            "journal_read", {})
                    except RpcError:
                        continue
                    for rec in records:
                        if rec["op"] == JOURNAL_OP_TERM:
                            self._journal_term_max = max(
                                self._journal_term_max, rec["gaddr"])
                continue
            if pending:
                if self.sim.tracer is not None:
                    trace(self.sim, "term", "term claim skipped servers",
                          term=self.term, unreachable=pending)
            self.term_claims.add()
            self._deposed = False
            if self.sim.tracer is not None:
                trace(self.sim, "term", "term claimed", term=self.term)
            return

    def _orphan_lock_sweep(self) -> Generator[Any, Any, None]:
        """Post-failover grace sweep (the restarted master lost all leases):
        any write lock whose owner uid did not re-attach within one lease
        interval belongs to a client that died with the old master — recover
        it.  Live clients re-attach within a heartbeat (lease/3), so their
        locks are never touched."""
        yield self.sim.timeout(self.config.client_lease_ns)
        if not self.node.endpoint.alive or self._recovering:
            return
        if self.config.failure_detector:
            # Partition-aware failover: a client absent after one lease may
            # be dead — or merely on the wrong side of a partition that
            # outlived the old master.  Retiring its rings now would greet
            # it with StaleRingError the moment the fabric heals, so the
            # absentees are only *suspected* for one extra grace lease;
            # whoever re-attaches during it keeps its rings and locks.
            if self.sim.tracer is not None:
                trace(self.sim, "partition",
                      "orphan sweep deferred: absent clients suspected",
                      reattached=sorted(self._client_uids))
            yield self.sim.timeout(self.config.client_lease_ns)
            if not self.node.endpoint.alive or self._recovering:
                return
        known = sorted(set(self._client_uids.values()))
        # Roll forward any intent whose owner did not re-attach, BEFORE the
        # orphan locks are cleared (same ordering argument as the lease
        # sweep): a committed transaction must become fully visible before
        # its write-set's locks can be handed to anyone else.
        if self.config.enable_txn:
            yield from self._txn_recover(exclude=known)
        recovered = 0
        for record in list(self.directory.objects()):
            handle = self._servers[record.server_id]
            try:
                owner = yield from handle.rpc.call("clear_lock_if_orphan", {
                    "lock_idx": record.lock_idx, "known": known,
                })
            except RpcError:
                continue
            if owner:
                recovered += 1
                if self.sim.tracer is not None:
                    trace(self.sim, "lease", "orphan lock recovered",
                          gaddr=hex(record.gaddr), owner_uid=owner)
        # Retire the orphans' proxy rings too: a zombie that never
        # re-attached must not keep landing staged writes on objects whose
        # locks were just handed back.  Re-attached clients are exactly the
        # keys of _client_uids, so every other ring belongs to an orphan.
        survivors = sorted(self._client_uids)
        retired: list = []
        for sid in sorted(self._servers):
            try:
                retired += yield from self._servers[sid].rpc.call(
                    "retire_rings_except", {"known": survivors})
            except RpcError:
                continue  # dead server: its DRAM (and the rings) are gone
        # Orphans' posted RPC slots return to this master's shared pool
        # too — on a restarted master _peer_qps is empty, so this is a
        # no-op there (the old QPs died with the process).
        for name in sorted(set(retired)):
            self.rpc.reclaim_peer(name)
        self.lock_recoveries.add(recovered)
        if self.sim.tracer is not None:
            trace(self.sim, "lease", "post-failover orphan sweep done",
                  locks_recovered=recovered,
                  rings_retired=sorted(set(retired)))

    def on_server_recovered(self, server_id: int) -> int:
        """Reconcile the directory after a server restart.

        Every DRAM copy that server held is gone, so its cached objects
        revert to NVM-only (pins are cleared too: the pinned copy no longer
        exists and must be re-pinned deliberately).  Returns the number of
        objects reconciled.
        """
        dropped = 0
        policy = self._policies[server_id]
        for record in self.directory.objects():
            if record.server_id != server_id:
                continue
            if record.cached:
                self.directory.mark_uncached(record.gaddr)
                policy.on_demoted(record.gaddr)
                dropped += 1
            record.pinned = False
            record.pinned_by = None
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "directory reconciled after restart",
                  server=server_id, dropped_cache_entries=dropped)
        return dropped

    def force_unlock(self, gaddr: int) -> Generator[Any, Any, int]:
        """Recovery: clear an object's lock word after a client failure.

        Returns the abandoned lock word (0 means it was already free).
        Only safe once the failed client is known to be gone - a live
        holder's critical section would lose its exclusion.
        """
        record = self.directory.get(gaddr)
        handle = self._servers[record.server_id]
        prior = yield from handle.rpc.call("clear_lock",
                                           {"lock_idx": record.lock_idx})
        return prior

    # ------------------------------------------------------------------
    # Hotness planner
    # ------------------------------------------------------------------
    def _planner_loop(self) -> Generator[Any, Any, None]:
        while True:
            yield self.sim.timeout(self.config.epoch_ns)
            # A crashed master plans nothing (the model checks aliveness on
            # the *remote* end, so outbound RPCs from a dead node would
            # otherwise still go through).
            if not self.node.endpoint.alive or self._recovering:
                continue
            for sid in sorted(self._servers):
                yield from self._plan_server(sid)

    def _aggregation_loop(self) -> Generator[Any, Any, None]:
        """Shard 0's cross-shard hotness aggregation.

        Each round pulls every shard's per-server cache demand (what is
        cached plus what its policy wants promoted), splits the pool-wide
        DRAM budget across *all* servers, and pushes each shard the slice
        covering the servers it owns.  Shards plan independently against
        their budgets, so the global cache budget stays coherent without
        any shard seeing another's directory.  A shard that is down or
        mid-failover keeps its last budgets — advisory end to end.
        """
        period = self.config.shard_aggregation_ns or self.config.epoch_ns
        while True:
            yield self.sim.timeout(period)
            if not self.node.endpoint.alive or self._recovering or self._deposed:
                continue
            demand: Dict[int, int] = {sid: self._server_demand(sid)
                                      for sid in self._servers}
            reached: List[int] = []
            for shard in sorted(self._peer_shards):
                try:
                    stats = yield from self._peer_shards[shard].call(
                        "shard_stats", {})
                except RpcError:
                    continue  # shard down/mid-failover: keeps last budgets
                demand.update(stats["demand"])
                reached.append(shard)
            budgets = self._split_budget(demand)
            for sid, budget in budgets.items():
                if sid in self._servers:
                    self._cache_budget[sid] = budget
            for shard in reached:
                share = {sid: b for sid, b in budgets.items()
                         if self.shard_map.get(sid, sid % self.num_shards)
                         == shard}
                try:
                    yield from self._peer_shards[shard].call(
                        "set_budget", {"budgets": share})
                except RpcError:
                    continue  # lost the push: next round re-delivers

    def _split_budget(self, demand: Dict[int, int]) -> Dict[int, int]:
        """Split the pool-wide DRAM budget across servers by demand.

        Every server keeps a floor (a quarter of its nominal capacity) so
        a cold server can still warm up; the remainder of the pool budget
        is divided proportionally to observed demand — equal split while
        nobody is hot yet — and clamped at the server's physical capacity
        (a server cannot spend a neighbour's DRAM).
        """
        cap = self.config.cache_capacity
        sids = sorted(demand)
        if not sids:
            return {}
        floor = cap // 4
        pool = (cap - floor) * len(sids)
        total = sum(demand.values())
        budgets: Dict[int, int] = {}
        for sid in sids:
            if total:
                extra = pool * demand[sid] // total
            else:
                extra = pool // len(sids)
            budgets[sid] = min(cap, floor + extra)
        return budgets

    def _plan_server(self, sid: int) -> Generator[Any, Any, None]:
        policy = self._policies[sid]
        handle = self._servers[sid]
        # The aggregator's budget (when sharded) caps this server below its
        # nominal capacity so the pool-wide DRAM budget stays coherent; a
        # server nobody aggregated for keeps the full capacity.
        budget = self._cache_budget.get(sid, self.config.cache_capacity)
        # Account the per-slot tag overhead against capacity so the server's
        # slot allocator cannot be overcommitted by the plan.
        plan = policy.plan(
            capacity=max(0, budget - self._tag_overhead(sid)),
            used=self.directory.cached_bytes(sid),
        )
        if plan.is_noop:
            return
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        for gaddr in plan.demotions:
            record = self.directory.lookup(gaddr)
            if record is not None and record.pinned:
                continue  # pinned objects are exempt from planner demotion
            yield from self._demote(handle, policy, gaddr)
        for gaddr in plan.promotions:
            yield from self._promote(handle, policy, gaddr)
        if rec is not None:
            rec.record(self.node.name, "master.plan_epoch", t0, server=sid,
                       promotions=len(plan.promotions),
                       demotions=len(plan.demotions))

    def _tag_overhead(self, sid: int) -> int:
        cached_count = sum(
            1 for r in self.directory.objects() if r.server_id == sid and r.cached
        )
        # Reserve headroom for tags: one per currently cached object plus a
        # small margin for this epoch's promotions.
        return (cached_count + 16) * CACHE_TAG_BYTES * 4

    def _drain_coherent(self, size: int) -> bool:
        """Whether a cached copy of a ``size``-byte object stays coherent.

        With the proxy enabled, a write rides the ring (and the server's
        drain refreshes the cache slot) only if it fits a slot; a larger
        write goes one-sided straight to NVM.  A client that has not yet
        heard about a promotion updates nothing else — so promoting an
        object whose writes can bypass the drain leaves a window where a
        validly-tagged slot holds stale bytes.  Such objects are simply
        not cacheable.  With the proxy off every write is direct and
        clients pay the verified-cache-write round trip instead, so size
        does not matter.
        """
        if not self.config.enable_proxy:
            return True
        return size <= proxy_payload_capacity(
            self.config.proxy_slot_size, commit=self.config.proxy_commit)

    def _promote(self, handle: _ServerHandle, policy, gaddr: int,
                 force: bool = False) -> Generator[Any, Any, None]:
        record = self.directory.lookup(gaddr)
        if record is None or record.cached:
            return
        if not force and not self._drain_coherent(record.size):
            return
        try:
            cache_offset = yield from handle.rpc.call(
                "promote", {"gaddr": gaddr, "size": record.size}
            )
        except RpcError:
            return  # server-side allocation failed (fragmentation); skip
        record = self.directory.lookup(gaddr)
        if record is None:
            # Freed while our RPC was in flight.  Undo: a slot must never
            # outlive its object — the tag is keyed by gaddr alone, so it
            # would validate for a future reallocation at the same address
            # and serve it stale bytes.
            try:
                yield from handle.rpc.call("demote", {"gaddr": gaddr})
            except RpcError:
                pass  # server down; its cache dies with it
            return
        if record.cached:
            # A concurrent promote (planner vs prefetch) won the race; the
            # server idempotently returned its slot.  Nothing to account.
            return
        self.directory.mark_cached(gaddr, cache_offset)
        policy.on_promoted(gaddr)
        self.promote_ops.add()

    def _demote(self, handle: _ServerHandle, policy, gaddr: int) -> Generator[Any, Any, None]:
        record = self.directory.lookup(gaddr)
        if record is None or not record.cached:
            return
        try:
            yield from handle.rpc.call("demote", {"gaddr": gaddr})
        except RpcError:
            return
        self.directory.mark_uncached(gaddr)
        policy.on_demoted(gaddr)
        self.demote_ops.add()
