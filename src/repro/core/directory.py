"""Master-side object directory.

One record per live object: where it lives in NVM, whether a DRAM-cached
copy exists and where, and which lock word guards it.  The directory is the
single source of truth; clients hold cached :class:`ObjectMeta` snapshots
that they re-validate through self-verifying cache reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.core.addressing import make_gaddr
from repro.core.protocol import ObjectMeta


class DirectoryError(Exception):
    """Unknown object or inconsistent directory operation."""


@dataclass
class ObjectRecord:
    """Mutable master-side state of one object."""

    gaddr: int
    size: int
    server_id: int
    nvm_offset: int
    lock_idx: int
    cached: bool = False
    cache_offset: int = 0
    #: Pinned objects stay in DRAM regardless of observed hotness.
    pinned: bool = False
    #: Which client asked for the pin (None for operator pins); lease
    #: expiry releases exactly the pins attributed to the dead client.
    pinned_by: Optional[str] = None
    #: Memoized ObjectMeta snapshot; ObjectMeta is frozen, so sharing one
    #: instance across lookups is safe.  Cleared whenever a field that
    #: feeds the snapshot changes (see mark_cached/mark_uncached).
    _meta_snapshot: Optional[ObjectMeta] = field(
        default=None, repr=False, compare=False)

    def to_meta(self) -> ObjectMeta:
        meta = self._meta_snapshot
        if meta is None:
            meta = self._meta_snapshot = ObjectMeta(
                gaddr=self.gaddr,
                size=self.size,
                server_id=self.server_id,
                nvm_offset=self.nvm_offset,
                lock_idx=self.lock_idx,
                cached=self.cached,
                cache_offset=self.cache_offset,
            )
        return meta


class Directory:
    """The master's object table."""

    def __init__(self):
        self._objects: Dict[int, ObjectRecord] = {}
        self._cached_bytes: Dict[int, int] = {}  # server_id -> bytes cached

    # ------------------------------------------------------------------
    def add(self, server_id: int, nvm_offset: int, size: int, lock_idx: int) -> ObjectRecord:
        """Register a newly allocated object; returns its record."""
        gaddr = make_gaddr(server_id, nvm_offset)
        if gaddr in self._objects:
            raise DirectoryError(f"object {gaddr:#x} already exists")
        record = ObjectRecord(
            gaddr=gaddr, size=size, server_id=server_id,
            nvm_offset=nvm_offset, lock_idx=lock_idx,
        )
        self._objects[gaddr] = record
        return record

    def remove(self, gaddr: int) -> ObjectRecord:
        """Drop an object (gfree); returns the final record."""
        record = self._objects.pop(gaddr, None)
        if record is None:
            raise DirectoryError(f"unknown object {gaddr:#x}")
        if record.cached:
            self._cached_bytes[record.server_id] = (
                self._cached_bytes.get(record.server_id, 0) - record.size
            )
        return record

    def get(self, gaddr: int) -> ObjectRecord:
        record = self._objects.get(gaddr)
        if record is None:
            raise DirectoryError(f"unknown object {gaddr:#x}")
        return record

    def lookup(self, gaddr: int) -> Optional[ObjectRecord]:
        """Like :meth:`get` but returns None for unknown objects."""
        return self._objects.get(gaddr)

    def __contains__(self, gaddr: int) -> bool:
        return gaddr in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def objects(self) -> Iterable[ObjectRecord]:
        return self._objects.values()

    # ------------------------------------------------------------------
    def mark_cached(self, gaddr: int, cache_offset: int) -> None:
        record = self.get(gaddr)
        if record.cached:
            raise DirectoryError(f"object {gaddr:#x} already cached")
        record.cached = True
        record.cache_offset = cache_offset
        record._meta_snapshot = None
        self._cached_bytes[record.server_id] = (
            self._cached_bytes.get(record.server_id, 0) + record.size
        )

    def mark_uncached(self, gaddr: int) -> None:
        record = self.get(gaddr)
        if not record.cached:
            raise DirectoryError(f"object {gaddr:#x} is not cached")
        record.cached = False
        record.cache_offset = 0
        record._meta_snapshot = None
        self._cached_bytes[record.server_id] = (
            self._cached_bytes.get(record.server_id, 0) - record.size
        )

    def cached_bytes(self, server_id: int) -> int:
        """Bytes of objects currently cached on ``server_id``."""
        return self._cached_bytes.get(server_id, 0)

    # ------------------------------------------------------------------
    def take_server(self, server_id: int) -> list:
        """Remove and return every record homed on ``server_id``.

        Reshard export: the records leave with their cached/pinned state
        intact (the adopting directory re-accounts them), and this
        directory's cached-bytes ledger for the server drops to zero.
        """
        taken = [r for r in self._objects.values() if r.server_id == server_id]
        for record in taken:
            del self._objects[record.gaddr]
        self._cached_bytes.pop(server_id, None)
        return taken

    def adopt(self, record: ObjectRecord) -> None:
        """Insert a record exported by another directory, preserving its
        cached-bytes accounting (reshard adoption)."""
        if record.gaddr in self._objects:
            raise DirectoryError(f"object {record.gaddr:#x} already exists")
        self._objects[record.gaddr] = record
        if record.cached:
            self._cached_bytes[record.server_id] = (
                self._cached_bytes.get(record.server_id, 0) + record.size
            )
