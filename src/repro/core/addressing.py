"""Global address space: 64-bit addresses spanning every server's NVM.

Gengar presents remote NVM as one flat space.  We encode the home server in
the upper bits so the data-plane never needs a lookup to find an object's
home: ``gaddr = (server_id << 48) | nvm_offset``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits reserved for the per-server offset (256 TiB per server).
OFFSET_BITS = 48
OFFSET_MASK = (1 << OFFSET_BITS) - 1
MAX_SERVERS = 1 << (64 - OFFSET_BITS)


class AddressError(Exception):
    """Malformed or out-of-range global address."""


def make_gaddr(server_id: int, offset: int) -> int:
    """Pack ``(server_id, offset)`` into a global address."""
    if not 0 <= server_id < MAX_SERVERS:
        raise AddressError(f"server id {server_id} out of range")
    if not 0 <= offset <= OFFSET_MASK:
        raise AddressError(f"offset {offset:#x} out of range")
    return (server_id << OFFSET_BITS) | offset


def server_of(gaddr: int) -> int:
    """The home server id encoded in ``gaddr``."""
    if gaddr < 0 or gaddr >= 1 << 64:
        raise AddressError(f"gaddr {gaddr:#x} is not a 64-bit address")
    return gaddr >> OFFSET_BITS


def shard_of(gaddr: int, num_shards: int) -> int:
    """The master shard owning ``gaddr``'s metadata.

    Sharding is by home server (``server_of % num_shards``), so the owner
    is decidable from the address alone — no lookup, and a shard's
    directory, allocator spans, and journals cover a disjoint server
    subset.
    """
    if num_shards <= 1:
        return 0
    return server_of(gaddr) % num_shards


def offset_of(gaddr: int) -> int:
    """The home-server NVM offset encoded in ``gaddr``."""
    if gaddr < 0 or gaddr >= 1 << 64:
        raise AddressError(f"gaddr {gaddr:#x} is not a 64-bit address")
    return gaddr & OFFSET_MASK


@dataclass(frozen=True)
class GlobalAddress:
    """Decoded view of a global address (for debugging and reports)."""

    server_id: int
    offset: int

    @classmethod
    def decode(cls, gaddr: int) -> "GlobalAddress":
        return cls(server_id=server_of(gaddr), offset=offset_of(gaddr))

    def encode(self) -> int:
        return make_gaddr(self.server_id, self.offset)

    def __int__(self) -> int:
        return self.encode()

    def __repr__(self) -> str:  # pragma: no cover
        return f"g{self.server_id}:{self.offset:#x}"
