"""Wire formats shared by Gengar clients and servers.

Three little-endian binary layouts travel over one-sided verbs and therefore
must be bit-exact on both ends:

* **Proxy ring slot**: ``[gaddr u64][obj_offset u32][length u32][payload]``.
  A client stages a write here with one RDMA WRITE_WITH_IMM; the immediate
  carries the slot index.
* **Cache slot tag**: ``[gaddr u64][flags u64]`` prepended to every cached
  object.  Reads are self-verifying: a client that reads a slot whose tag
  does not match the gaddr it expected knows its metadata is stale.
* **Lock word**: a u64 reader/writer lock driven purely by RDMA atomics —
  bit 0 is the writer bit, bits 1+ count readers in units of 2.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Proxy ring slots
# ---------------------------------------------------------------------------
_SLOT_HEADER = struct.Struct("<QII")
PROXY_HEADER_BYTES = _SLOT_HEADER.size  # 16
#: Trailing commit word (optional, ``proxy_commit``): 8 bytes after the
#: payload that let the drain loop detect a torn (half-written) slot.
PROXY_COMMIT_BYTES = 8
_SEQ_MASK = (1 << 32) - 1


def pack_proxy_slot(gaddr: int, obj_offset: int, payload: bytes) -> bytes:
    """Serialize one staged write."""
    return _SLOT_HEADER.pack(gaddr, obj_offset, len(payload)) + payload


def unpack_proxy_header(raw: bytes) -> tuple[int, int, int]:
    """Parse ``(gaddr, obj_offset, length)`` from a slot's first 16 bytes."""
    return _SLOT_HEADER.unpack_from(raw)


def pack_proxy_commit(seq: int, frame: bytes) -> bytes:
    """The commit word trailing a slot: ``[seq_lo32 | crc32(frame) ^ seq]``.

    ``frame`` is the full ``header+payload`` bytes of the slot.  A client
    that dies mid-WRITE leaves either stale commit bytes (wrong seq half)
    or a checksum that no longer covers the torn frame — both fail
    :func:`proxy_commit_ok`, so the drain loop never applies the garbage.
    """
    s = seq & _SEQ_MASK
    return ((s << 32) | (zlib.crc32(frame) ^ s)).to_bytes(8, "little")


def proxy_commit_ok(raw: bytes, seq: int, frame: bytes) -> bool:
    """True iff ``raw`` is the commit word for exactly (``seq``, ``frame``)."""
    if len(raw) != PROXY_COMMIT_BYTES:
        return False
    return raw == pack_proxy_commit(seq, frame)


def proxy_payload_capacity(slot_size: int, commit: bool = False) -> int:
    """Largest write a slot of ``slot_size`` bytes can stage."""
    return slot_size - PROXY_HEADER_BYTES - (PROXY_COMMIT_BYTES if commit else 0)


# ---------------------------------------------------------------------------
# Cache slot tags
# ---------------------------------------------------------------------------
_TAG = struct.Struct("<QQ")
CACHE_TAG_BYTES = _TAG.size  # 16
#: Tag flag: slot holds a live object.
TAG_LIVE = 1


def pack_cache_tag(gaddr: int, flags: int = TAG_LIVE) -> bytes:
    return _TAG.pack(gaddr, flags)


def unpack_cache_tag(raw: bytes) -> tuple[int, int]:
    """Parse ``(gaddr, flags)`` from a cache slot's first 16 bytes."""
    return _TAG.unpack_from(raw)


def tag_matches(raw: bytes, gaddr: int) -> bool:
    """True if the slot's tag names ``gaddr`` and is live."""
    tag_gaddr, flags = unpack_cache_tag(raw)
    return tag_gaddr == gaddr and bool(flags & TAG_LIVE)


# ---------------------------------------------------------------------------
# Persistent metadata journal (optional, lives at the tail of each server's
# NVM).  Record layout, 32 bytes little-endian:
#   [magic u16][op u16][lock_idx u32][gaddr u64][size u64][req_id u64]
# req_id is the client-supplied idempotency token (0 = none); replaying it
# lets a restarted master keep deduplicating retried gmalloc/gfree RPCs.
# ---------------------------------------------------------------------------
_JOURNAL = struct.Struct("<HHIQQQ")
JOURNAL_RECORD_BYTES = _JOURNAL.size  # 32
JOURNAL_MAGIC = 0x4721
JOURNAL_OP_ALLOC = 1
JOURNAL_OP_FREE = 2
#: Master-term claim (split-brain fencing): the term value rides in the
#: ``gaddr`` field; lock_idx/size/req_id are zero.  Replay takes the max.
JOURNAL_OP_TERM = 3
#: Fencing-epoch retirement: the fenced client's uid rides in ``gaddr``
#: and the freshly granted (post-bump) epoch in ``size``.  Replay takes
#: the max per uid, so a restarted master — whose epoch map is volatile —
#: can never re-grant an epoch the lease sweep already retired.
JOURNAL_OP_FENCE = 4
#: Bytes reserved at the journal base for the record-count header word.
JOURNAL_HEADER_BYTES = 64


def pack_journal_record(op: int, lock_idx: int, gaddr: int, size: int,
                        req_id: int = 0) -> bytes:
    if op not in (JOURNAL_OP_ALLOC, JOURNAL_OP_FREE, JOURNAL_OP_TERM,
                  JOURNAL_OP_FENCE):
        raise ValueError(f"unknown journal op {op}")
    return _JOURNAL.pack(JOURNAL_MAGIC, op, lock_idx, gaddr, size, req_id)


def unpack_journal_record(raw: bytes) -> tuple[int, int, int, int, int]:
    """Parse ``(op, lock_idx, gaddr, size, req_id)``; raises on a bad magic."""
    magic, op, lock_idx, gaddr, size, req_id = _JOURNAL.unpack_from(raw)
    if magic != JOURNAL_MAGIC:
        raise ValueError(f"corrupt journal record (magic {magic:#x})")
    return op, lock_idx, gaddr, size, req_id


# ---------------------------------------------------------------------------
# Lock words
#
# Layout (64 bits):
#   bit 0        writer bit
#   bits 1-31    reader count, in units of 2 (reader FAAs never carry into
#                the owner field at any realistic reader count)
#   bits 32-47   writer owner id (the client uid), 0 unless write-locked
#   bits 48-63   fencing epoch of the holder at acquire time
#
# A writer acquires with CAS(0 -> (epoch << 48) | (uid << 32) | 1) and
# releases with FAA(-word), which is correct even while reader increments
# are in flight.  The owner field is what makes abandoned locks
# *recoverable*: the master can identify and clear exactly the locks a dead
# client held.  The epoch field is what makes that recovery *fenced*: the
# master bumps a client's epoch when its lease expires, so a revived zombie
# whose lock was recovered (and possibly re-acquired by someone else) can
# never mistake the new word for its own — its conditional release fails
# loudly instead of clobbering the new holder.  Epoch 0 words are bit-
# identical to the pre-lease layout.
# ---------------------------------------------------------------------------
WRITER_BIT = 1
READER_UNIT = 2
LOCK_WORD_BYTES = 8
_OWNER_SHIFT = 32
_EPOCH_SHIFT = 48
_OWNER_MASK = (1 << (_EPOCH_SHIFT - _OWNER_SHIFT)) - 1
_LOW_MASK = (1 << _OWNER_SHIFT) - 1
#: Largest representable fencing epoch (16 bits).
MAX_FENCE_EPOCH = (1 << 16) - 1


def write_lock_word(owner_uid: int, epoch: int = 0) -> int:
    """The word a writer installs: fencing epoch + owner id + writer bit."""
    if not 0 < owner_uid <= _OWNER_MASK:
        raise ValueError(f"owner uid out of range: {owner_uid}")
    if not 0 <= epoch <= MAX_FENCE_EPOCH:
        raise ValueError(f"fencing epoch out of range: {epoch}")
    return (epoch << _EPOCH_SHIFT) | (owner_uid << _OWNER_SHIFT) | WRITER_BIT


def lock_is_write_locked(word: int) -> bool:
    return bool(word & WRITER_BIT)


def lock_owner(word: int) -> int:
    """The writer's uid (0 when not write-locked)."""
    return (word >> _OWNER_SHIFT) & _OWNER_MASK


def lock_epoch(word: int) -> int:
    """The fencing epoch the writer held at acquire time."""
    return word >> _EPOCH_SHIFT


def lock_reader_count(word: int) -> int:
    return (word & _LOW_MASK) >> 1


def lock_is_free(word: int) -> bool:
    return word == 0


# ---------------------------------------------------------------------------
# Control-plane sharding
# ---------------------------------------------------------------------------
def default_shard_map(server_ids, num_shards: int) -> dict:
    """The bootstrap shard layout: server ``sid`` is owned by shard
    ``sid % num_shards`` (the same modulus :func:`~repro.core.addressing.
    shard_of` applies to addresses).  Resharding moves entries away from
    this layout; every divergence is announced by a map-epoch bump."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return {sid: sid % num_shards for sid in server_ids}


# ---------------------------------------------------------------------------
# Object metadata exchanged over RPC (plain dataclass; pickled by the RPC
# layer with realistic size accounting).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectMeta:
    """What a client needs to reach an object with one-sided verbs."""

    gaddr: int
    size: int
    server_id: int
    nvm_offset: int
    lock_idx: int
    cached: bool
    cache_offset: int  # valid only when cached

    def with_cache(self, cached: bool, cache_offset: int = 0) -> "ObjectMeta":
        return ObjectMeta(
            gaddr=self.gaddr,
            size=self.size,
            server_id=self.server_id,
            nvm_offset=self.nvm_offset,
            lock_idx=self.lock_idx,
            cached=cached,
            cache_offset=cache_offset,
        )


@dataclass(frozen=True)
class ServerDescriptor:
    """Everything a client needs to talk to one memory server.

    Returned by the master at attach time: rkeys for the data region, the
    DRAM cache, and the lock table, so the client's data plane never touches
    the master again.
    """

    server_id: int
    node_name: str
    data_rkey: int
    cache_rkey: int
    lock_rkey: int


@dataclass(frozen=True)
class RingDescriptor:
    """A client's private proxy ring on one server."""

    ring_rkey: int
    slots: int
    slot_size: int
    #: Region-relative offset of the drained-counter u64 (readable one-sided).
    counter_offset: int
