"""The public façade: build and boot a Gengar deployment in one call.

:class:`GengarPool` assembles the cluster (master node, memory servers,
client nodes), wires every RDMA connection, and runs the bootstrap handshake
(master registration, client attach, proxy ring setup).  After
:meth:`GengarPool.build`, the pool's clients are ready for
``gmalloc``/``gread``/``gwrite``/``glock``.

Typical usage::

    from repro.core import GengarPool
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    pool = GengarPool.build(sim, num_servers=2, num_clients=2)

    def app(sim, client):
        gaddr = yield from client.gmalloc(4096)
        yield from client.gwrite(gaddr, b"hello pool")
        data = yield from client.gread(gaddr, length=10)
        return data

    proc = sim.spawn(app(sim, pool.clients[0]))
    sim.run()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.node import NodeSpec
from repro.core.client import GengarClient
from repro.core.config import GengarConfig
from repro.core.master import Master, MasterError
from repro.core.protocol import default_shard_map
from repro.core.server import MemoryServer
from repro.hardware.specs import (
    CONNECTX5_NIC,
    DDR4_DRAM,
    DEFAULT_LINK,
    OPTANE_NVM,
    LinkSpec,
    MemorySpec,
    NicSpec,
)
from repro.rdma.endpoint import connect
from repro.rdma.rpc import DEFAULT_BUFFER_SIZE, RpcClient


def _rpc_span(config: GengarConfig) -> int:
    """DRAM reserved on clients/masters for one RPC connection's rings
    (receive + send), derived from the config's single ring-depth knob."""
    return 2 * config.rpc_initial_ring_slots * DEFAULT_BUFFER_SIZE


class GengarPool:
    """A booted Gengar deployment: master + servers + attached clients."""

    def __init__(self, sim: "Simulator", cluster: Cluster, master: Master,
                 servers: Dict[int, MemoryServer], clients: List[GengarClient],
                 config: GengarConfig, standby: Optional[Master] = None,
                 masters: Optional[List[Master]] = None):
        self.sim = sim
        self.cluster = cluster
        self.master = master
        self.servers = servers
        self.clients = clients
        self.config = config
        #: Warm standby master (``build(standby_master=True)``): wired to
        #: every server and client but refusing to serve until
        #: :meth:`promote_standby` runs its recovery + term claim.
        self.standby = standby
        #: All master shards in shard order (``masters[0] is master``).
        #: A single-master pool is the one-shard special case.
        self.masters: List[Master] = masters if masters else [master]

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sim: "Simulator",
        num_servers: int = 2,
        num_clients: int = 2,
        config: Optional[GengarConfig] = None,
        dram: MemorySpec = DDR4_DRAM,
        nvm: MemorySpec = OPTANE_NVM,
        nic: NicSpec = CONNECTX5_NIC,
        link: LinkSpec = DEFAULT_LINK,
        client_cores: int = 16,
        policy_factory=None,
        rack_plan: Optional[Dict[str, str]] = None,
        standby_master: bool = False,
    ) -> "GengarPool":
        """Construct the cluster, wire it, and run the bootstrap handshake.

        The simulator is run (synchronously) until the handshake completes;
        virtual time spent booting is realistic RPC time.
        """
        if num_servers < 1 or num_clients < 1:
            raise ValueError("need at least one server and one client")
        config = config or GengarConfig()
        num_shards = config.num_master_shards
        if num_shards > num_servers:
            raise ValueError(
                f"num_master_shards ({num_shards}) cannot exceed "
                f"num_servers ({num_servers}): every shard must own at "
                f"least one server")

        rack_plan = rack_plan or {}
        node_specs = [NodeSpec(name="master", dram=dram, nvm=None,
                               rack=rack_plan.get("master"))]
        for k in range(1, num_shards):
            node_specs.append(NodeSpec(name=f"master_s{k}", dram=dram,
                                       nvm=None,
                                       rack=rack_plan.get(f"master_s{k}")))
        if standby_master:
            node_specs.append(NodeSpec(name="master1", dram=dram, nvm=None,
                                       rack=rack_plan.get("master1")))
        for i in range(num_servers):
            node_specs.append(NodeSpec(name=f"server{i}", dram=dram, nvm=nvm,
                                       rack=rack_plan.get(f"server{i}")))
        for i in range(num_clients):
            node_specs.append(
                NodeSpec(name=f"client{i}", dram=dram, nvm=None,
                         cores=client_cores, rack=rack_plan.get(f"client{i}"))
            )
        cluster = Cluster(sim, ClusterSpec(nodes=tuple(node_specs), link=link))
        # Dead-peer detection horizon: how long a verb retransmits against a
        # silent peer before completing with RETRY_EXCEEDED.
        for spec in node_specs:
            cluster.node(spec.name).endpoint.retry_timeout_ns = config.retry_timeout_ns

        # Shard k owns servers with sid % num_shards == k; shard 0 lives on
        # the "master" node, so the one-shard pool is byte-identical to the
        # historical single-master deployment.
        masters: List[Master] = [
            Master(cluster.node("master" if k == 0 else f"master_s{k}"),
                   config, policy_factory=policy_factory,
                   shard_id=k, num_shards=num_shards)
            for k in range(num_shards)
        ]
        master = masters[0]
        shard_map = default_shard_map(range(num_servers), num_shards)
        servers: Dict[int, MemoryServer] = {}
        for sid in range(num_servers):
            server_node = cluster.node(f"server{sid}")
            servers[sid] = MemoryServer(server_node, sid, config)

        # Master <-> server control connections.  Every shard is wired to
        # every server (cross-shard txn applies need a path), but only the
        # owning shard registers it as owned.
        master_node = cluster.node("master")
        for m in masters:
            m.shard_map = dict(shard_map)
            for sid, server in servers.items():
                qp_m, qp_s = connect(m.node.endpoint, server.node.endpoint)
                server.serve_control(qp_s, peer=m.node.name)
                rpc_base = m.carve_rpc_span()
                rpc = RpcClient(m.node.endpoint, qp_m, m.node.dram,
                                base=rpc_base,
                                num_buffers=config.rpc_initial_ring_slots,
                                name=f"{m.node.name}->server{sid}",
                                credits=config.rpc_credits)
                m.add_server(server.descriptor(), rpc,
                             data_capacity=server.data_capacity,
                             owned=shard_map[sid] == m.shard_id)

        # Shard 0 <-> peer shard control connections (cross-shard hotness
        # aggregation: demand stats out, budgets back).
        for m in masters[1:]:
            qp_0, qp_k = connect(master_node.endpoint, m.node.endpoint)
            m.serve_control(qp_k, peer=master_node.name)
            rpc = RpcClient(master_node.endpoint, qp_0, master_node.dram,
                            base=master.carve_rpc_span(),
                            num_buffers=config.rpc_initial_ring_slots,
                            name=f"master->{m.node.name}",
                            credits=config.rpc_credits)
            master.add_peer_shard(m.shard_id, rpc)

        # Warm standby for shard 0: wired to every server (for the journal
        # scan + term claim at promotion) but born recovering — it serves
        # nothing and journals nothing until promote_standby().
        standby: Optional[Master] = None
        if standby_master:
            standby_node = cluster.node("master1")
            standby = Master(standby_node, config,
                             policy_factory=policy_factory, standby=True,
                             shard_id=0, num_shards=num_shards)
            standby.shard_map = dict(shard_map)
            for sid, server in servers.items():
                qp_m, qp_s = connect(standby_node.endpoint, server.node.endpoint)
                server.serve_control(qp_s, peer=standby_node.name)
                rpc = RpcClient(standby_node.endpoint, qp_m, standby_node.dram,
                                base=standby.carve_rpc_span(),
                                num_buffers=config.rpc_initial_ring_slots,
                                name=f"master1->server{sid}",
                                credits=config.rpc_credits)
                standby.add_server(server.descriptor(), rpc,
                                   data_capacity=server.data_capacity,
                                   owned=shard_map[sid] == 0)

        # Clients: control to master, control + data to each server.
        clients: List[GengarClient] = []
        for cid in range(num_clients):
            client_node = cluster.node(f"client{cid}")
            client = GengarClient(client_node, name=f"client{cid}")
            span = _rpc_span(config)
            for m in masters:
                qp_c, qp_m = connect(client_node.endpoint, m.node.endpoint)
                m.serve_control(qp_m, peer=client.name)
                client.add_master_conn(RpcClient(
                    client_node.endpoint, qp_c, client_node.dram,
                    base=client.carve_dram(span, f"rpc.{m.node.name}"),
                    num_buffers=config.rpc_initial_ring_slots,
                    name=f"{client.name}->{m.node.name}",
                    credits=config.rpc_credits,
                ), shard=m.shard_id)
            if standby is not None:
                qp_c2, qp_m2 = connect(client_node.endpoint,
                                       standby.node.endpoint)
                standby.serve_control(qp_m2, peer=client.name)
                client.add_master_conn(RpcClient(
                    client_node.endpoint, qp_c2, client_node.dram,
                    base=client.carve_dram(span, "rpc.master1"),
                    num_buffers=config.rpc_initial_ring_slots,
                    name=f"{client.name}->master1",
                    credits=config.rpc_credits,
                ))
            for sid, server in servers.items():
                ctrl_c, ctrl_s = connect(client_node.endpoint, server.node.endpoint)
                server.serve_control(ctrl_s, peer=client.name)
                server_rpc = RpcClient(
                    client_node.endpoint, ctrl_c, client_node.dram,
                    base=client.carve_dram(span, f"rpc.server{sid}"),
                    num_buffers=config.rpc_initial_ring_slots,
                    name=f"{client.name}->server{sid}",
                    credits=config.rpc_credits,
                )
                data_c, _data_s = connect(client_node.endpoint, server.node.endpoint)
                client.add_server_conn(server.descriptor(), data_c, server_rpc)
            clients.append(client)

        # Bootstrap handshake: attach every client, then start the planners
        # (shard 0's also arms the cross-shard aggregator).
        def bootstrap(sim):
            for client in clients:
                yield from client.attach()
            for m in masters:
                m.start_planner()

        sim.run_until_complete(sim.spawn(bootstrap(sim), name="bootstrap"))
        return cls(sim, cluster, master, servers, clients, config,
                   standby=standby, masters=masters)

    # ------------------------------------------------------------------
    def run(self, *generators, max_events: Optional[int] = None) -> list:
        """Spawn application processes and run until all of them finish.

        Background service loops (proxy drains, the hotness planner) keep
        the event queue non-empty forever, so callers should use this rather
        than ``sim.run()``.  Returns the processes' values in order; raises
        the first failure.
        """
        procs = [self.sim.spawn(g) for g in generators]
        self.sim.run_until_complete(self.sim.all_of(procs), max_events=max_events)
        return [p.value for p in procs]

    def promote_standby(self, rebuild: bool = True):
        """Promote the warm standby: spawn its recovery process (journal
        replay + term claim) and return the process.

        The claim journals a term above every persisted one, which makes
        the servers reject the old incumbent's subsequent appends — the
        deposed master cannot ack another allocation even if it is still
        running on the far side of a partition.  Clients fail over on
        their own: a stale-term reply (or unreachable incumbent) makes the
        retry loop rotate to the standby's connection.

        The standby keeps refusing RPCs ("master recovering") until the
        claim lands, so promotion mid-partition is safe — it just parks
        until the fabric heals enough to reach the journals.
        """
        if self.standby is None:
            raise ValueError("pool was built without standby_master=True")
        standby = self.standby
        proc = self.sim.spawn(standby.recovery_process(rebuild=rebuild),
                              name="master1.promote")
        # The promoted standby is the pool's master from here on (the old
        # incumbent object stays alive — and fenced — for inspection).
        self.master, self.standby = standby, self.master
        return proc

    def reshard(self, server_id: int, to_shard: int) -> None:
        """Move ownership of ``server_id``'s metadata to ``to_shard``.

        Instant in virtual time: the exporting shard's directory records,
        allocator, lock bookkeeping, and dedup entries are grafted onto
        the adopting shard, and every master installs the new shard map in
        the same virtual instant (map epoch bumped in lockstep).  Clients
        discover the move lazily — their next misrouted op gets a typed
        ``not my shard`` redirect and re-resolves.
        """
        if not 0 <= to_shard < len(self.masters):
            raise ValueError(f"no such shard: {to_shard}")
        if server_id not in self.servers:
            raise ValueError(f"no such server: {server_id}")
        current = self.master.shard_map.get(
            server_id, server_id % len(self.masters))
        if current == to_shard:
            return
        for role, m in (("exporting", self.masters[current]),
                        ("adopting", self.masters[to_shard])):
            if (not m.node.endpoint.alive or m._recovering or m._deposed):
                raise MasterError(
                    f"reshard needs the {role} shard serving (shard "
                    f"{m.shard_id} is down, recovering, or deposed)")
        state = self.masters[current].export_server(server_id)
        self.masters[to_shard].adopt_server(state)
        new_map = dict(self.master.shard_map)
        new_map[server_id] = to_shard
        everyone = list(self.masters)
        if self.standby is not None:
            everyone.append(self.standby)
        for m in everyone:
            m.apply_shard_map(new_map)

    def inject_faults(self, plan, rng_name: str = "faults"):
        """Arm a :class:`~repro.faults.plan.FaultPlan` against this pool.

        Returns the installed :class:`~repro.faults.injector.FaultInjector`
        (keep it to ``uninstall()`` the fabric hook later).
        """
        from repro.faults.injector import FaultInjector

        return FaultInjector.for_pool(self, plan, rng_name=rng_name).install()

    def server_for(self, gaddr: int) -> MemoryServer:
        """The memory server homing ``gaddr``."""
        from repro.core.addressing import server_of

        return self.servers[server_of(gaddr)]

    def describe(self) -> Dict[str, object]:
        """Structured operator snapshot of the whole deployment.

        Complements :meth:`metrics_snapshot` (flat pool-wide counters) with
        per-component state: directory occupancy, per-server cache/proxy
        status, and per-client session state.
        """
        m = self.sim.metrics
        servers = {}
        for sid, server in self.servers.items():
            servers[f"server{sid}"] = {
                "alive": server.is_alive,
                "cached_objects": len(server.cached),
                "cache_used_bytes": server.cache_used_bytes,
                "drained_writes": server.drained_writes.count,
                "peak_ring_occupancy": server.ring_occupancy.peak,
                "promotions": server.promotions.count,
                "demotions": server.demotions.count,
                "crashes": server.crashes,
                "torn_slots_skipped": server.torn_skipped.count,
                "journal_records": getattr(server, "_journal_count", 0)
                if server.journal_base is not None else None,
            }
        clients = {}
        for client in self.clients:
            clients[client.name] = {
                "uid": client.uid,
                "pending_overlay_writes": len(client._overlay),
                "cached_metadata_entries": len(client._meta_cache),
                "fence_epoch": client.fence_epoch,
                "fenced": client.fenced,
            }
        return {
            "virtual_time_ns": self.sim.now,
            "objects": sum(len(m.directory) for m in self.masters),
            "shards": {
                "count": len(self.masters),
                "map_epoch": self.master.map_epoch,
                "owners": {m.node.name: sorted(m._servers)
                           for m in self.masters},
            },
            "master": {
                "allocations": self.master.allocations.count,
                "reports": self.master.reports.count,
                "promotions": self.master.promote_ops.count,
                "demotions": self.master.demote_ops.count,
                "crashes": self.master.crashes,
            },
            "servers": servers,
            "clients": clients,
            "locks": {
                "acquires": m.counter("pool.lock_acquires").count,
                "retries": m.counter("pool.lock_retries").count,
            },
            "resilience": {
                "lease_renewals": self.master.lease_renewals.count,
                "lease_expiries": self.master.lease_expiries.count,
                "fence_rejections_master": self.master.fence_rejections.count,
                "fence_rejections_clients":
                    m.counter("pool.fence_rejections").count,
                "lock_recoveries": int(self.master.lock_recoveries.total),
                "torn_slot_skips": sum(
                    s.torn_skipped.count for s in self.servers.values()),
                "master_failovers": self.master.failovers.count,
                "journal_records_replayed": int(self.master.journal_replayed.total),
                "client_master_reattaches":
                    m.counter("pool.master_failovers").count,
            },
            "partitions": {
                "master_term": self.master.term,
                "master_deposed": self.master._deposed,
                "standby": (self.standby.node.name
                            if self.standby is not None else None),
                "suspected_clients":
                    m.counter("master.suspected_clients").count,
                "term_claims": m.counter("master.term_claims").count,
                "depositions": m.counter("master.depositions").count,
                "stale_term_rejections":
                    m.counter("pool.stale_term_rejections").count,
                "partition_suspected":
                    m.counter("pool.partition_suspected").count,
                "lease_lapses": m.counter("pool.lease_lapses").count,
            },
            "txn": {
                "enabled": self.config.enable_txn,
                "begins": m.counter("pool.txn_begins").count,
                "commits": m.counter("pool.txn_commits").count,
                "aborts": m.counter("pool.txn_aborts").count,
                "wait_die_deaths": m.counter("pool.txn_wait_die").count,
                "commit_handoffs": m.counter("pool.txn_handoffs").count,
                "rolled_forward":
                    m.counter("master.txn_rolled_forward").count,
                "lock_timeouts": m.counter("pool.lock_timeouts").count,
                "intents_journaled": sum(
                    m.counter(f"{s.node.name}.txn.intents").count
                    for s in self.servers.values()),
                "writes_applied": sum(
                    m.counter(f"{s.node.name}.txn.applied").count
                    for s in self.servers.values()),
            },
        }

    def metrics_snapshot(self) -> Dict[str, float]:
        """Pool-wide counters most benchmarks report."""
        m = self.sim.metrics
        reads = m.counter("pool.reads")
        hits = m.counter("pool.cache_hits")
        return {
            "reads": reads.count,
            "writes": m.counter("pool.writes").count,
            "cache_hits": hits.count,
            "cache_hit_ratio": hits.count / reads.count if reads.count else 0.0,
            "proxy_writes": m.counter("pool.proxy_writes").count,
            "direct_writes": m.counter("pool.direct_writes").count,
            "read_latency_mean_ns": m.histogram("pool.read_latency").mean,
            "write_latency_mean_ns": m.histogram("pool.write_latency").mean,
        }
