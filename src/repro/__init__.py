"""Gengar: an RDMA-based distributed hybrid memory pool — reproduction.

A functional discrete-event reproduction of the ICDCS 2021 paper.  The
public surface most users need:

* :class:`repro.core.GengarPool` — build and boot a deployment.
* :class:`repro.core.GengarClient` — the application API.
* :class:`repro.sim.Simulator` — the event loop everything runs on.
* :func:`repro.baselines.build_system` — boot any comparator system.

See README.md for a tour and EXPERIMENTS.md for the reproduced evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
